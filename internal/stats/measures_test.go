package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	if math.IsInf(a, 1) && math.IsInf(b, 1) {
		return true
	}
	return math.Abs(a-b) <= tol
}

func TestMAE(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{1, 3, 1}
	if got := MAE(a, b); !almostEqual(got, 1.0, 1e-12) {
		t.Fatalf("MAE = %v, want 1", got)
	}
}

func TestMAEIdentical(t *testing.T) {
	a := []float64{4, -2, 0.5}
	if got := MAE(a, a); got != 0 {
		t.Fatalf("MAE(a,a) = %v, want 0", got)
	}
}

func TestMAEMismatchedLengths(t *testing.T) {
	if got := MAE([]float64{1}, []float64{1, 2}); !math.IsNaN(got) {
		t.Fatalf("MAE on mismatched lengths = %v, want NaN", got)
	}
}

func TestMAEEmpty(t *testing.T) {
	if got := MAE(nil, nil); !math.IsNaN(got) {
		t.Fatalf("MAE(nil,nil) = %v, want NaN", got)
	}
}

func TestMSEAndRMSE(t *testing.T) {
	a := []float64{0, 0, 0, 0}
	b := []float64{2, -2, 2, -2}
	if got := MSE(a, b); !almostEqual(got, 4, 1e-12) {
		t.Fatalf("MSE = %v, want 4", got)
	}
	if got := RMSE(a, b); !almostEqual(got, 2, 1e-12) {
		t.Fatalf("RMSE = %v, want 2", got)
	}
}

func TestNRMSE(t *testing.T) {
	a := []float64{0, 10} // range 10
	b := []float64{1, 9}  // rmse 1
	if got := NRMSE(a, b); !almostEqual(got, 0.1, 1e-12) {
		t.Fatalf("NRMSE = %v, want 0.1", got)
	}
}

func TestNRMSEConstantReference(t *testing.T) {
	a := []float64{5, 5, 5}
	if got := NRMSE(a, a); got != 0 {
		t.Fatalf("NRMSE of identical constant = %v, want 0", got)
	}
	if got := NRMSE(a, []float64{5, 6, 5}); !math.IsInf(got, 1) {
		t.Fatalf("NRMSE of constant ref with error = %v, want +Inf", got)
	}
}

func TestMAPE(t *testing.T) {
	a := []float64{10, 20}
	b := []float64{11, 18}
	// |1/10| and |2/20| -> mean 0.1
	if got := MAPE(a, b); !almostEqual(got, 0.1, 1e-12) {
		t.Fatalf("MAPE = %v, want 0.1", got)
	}
}

func TestMAPESkipsZeros(t *testing.T) {
	a := []float64{0, 10}
	b := []float64{5, 20}
	if got := MAPE(a, b); !almostEqual(got, 1.0, 1e-12) {
		t.Fatalf("MAPE = %v, want 1.0 (zero reference skipped)", got)
	}
}

func TestChebyshev(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{1, 5, 2}
	if got := Chebyshev(a, b); !almostEqual(got, 3, 1e-12) {
		t.Fatalf("Chebyshev = %v, want 3", got)
	}
}

func TestMSMAPEIdenticalIsZero(t *testing.T) {
	a := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	if got := MSMAPE(a, a); got != 0 {
		t.Fatalf("MSMAPE(a,a) = %v, want 0", got)
	}
}

func TestMSMAPEFiniteAroundZeros(t *testing.T) {
	a := []float64{1, 0, 0, 2}
	b := []float64{1, 1, -1, 2}
	got := MSMAPE(a, b)
	if math.IsNaN(got) || math.IsInf(got, 0) {
		t.Fatalf("MSMAPE = %v, want finite", got)
	}
	if got <= 0 {
		t.Fatalf("MSMAPE = %v, want > 0", got)
	}
}

func TestPSNR(t *testing.T) {
	a := []float64{0, 255}
	b := []float64{0, 255}
	if got := PSNR(a, b); !math.IsInf(got, 1) {
		t.Fatalf("PSNR identical = %v, want +Inf", got)
	}
	b = []float64{1, 254}
	got := PSNR(a, b)
	want := 10 * math.Log10(255*255/1.0)
	if !almostEqual(got, want, 1e-9) {
		t.Fatalf("PSNR = %v, want %v", got, want)
	}
}

func TestPearsonPerfect(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	b := []float64{2, 4, 6, 8}
	if got := Pearson(a, b); !almostEqual(got, 1, 1e-12) {
		t.Fatalf("Pearson = %v, want 1", got)
	}
	c := []float64{8, 6, 4, 2}
	if got := Pearson(a, c); !almostEqual(got, -1, 1e-12) {
		t.Fatalf("Pearson = %v, want -1", got)
	}
}

func TestPearsonZeroVariance(t *testing.T) {
	a := []float64{1, 1, 1}
	b := []float64{1, 2, 3}
	if got := Pearson(a, b); !math.IsNaN(got) {
		t.Fatalf("Pearson with constant input = %v, want NaN", got)
	}
}

func TestMeasureEvalMatchesFunctions(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	b := []float64{1.5, 1.5, 3.5, 3, 5.5}
	cases := []struct {
		m    Measure
		want float64
	}{
		{MeasureMAE, MAE(a, b)},
		{MeasureMSE, MSE(a, b)},
		{MeasureRMSE, RMSE(a, b)},
		{MeasureNRMSE, NRMSE(a, b)},
		{MeasureMAPE, MAPE(a, b)},
		{MeasureSMAPE, MSMAPE(a, b)},
		{MeasureChebyshev, Chebyshev(a, b)},
	}
	for _, c := range cases {
		if got := c.m.Eval(a, b); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("%v.Eval = %v, want %v", c.m, got, c.want)
		}
	}
}

func TestMeasureString(t *testing.T) {
	names := map[Measure]string{
		MeasureMAE: "MAE", MeasureMSE: "MSE", MeasureRMSE: "RMSE",
		MeasureNRMSE: "NRMSE", MeasureMAPE: "MAPE", MeasureSMAPE: "mSMAPE",
		MeasureChebyshev: "CHEB", Measure(99): "unknown",
	}
	for m, want := range names {
		if got := m.String(); got != want {
			t.Errorf("Measure(%d).String() = %q, want %q", int(m), got, want)
		}
	}
}

// Property: all measures are non-negative and zero on identical inputs.
func TestMeasuresNonNegativeProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		a := make([]float64, len(raw))
		b := make([]float64, len(raw))
		for i, v := range raw {
			// Clamp to keep values sane.
			v = math.Mod(v, 1e6)
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			a[i] = v
			b[i] = v/2 + 1
		}
		for _, m := range []Measure{MeasureMAE, MeasureMSE, MeasureRMSE, MeasureChebyshev} {
			if d := m.Eval(a, b); d < 0 {
				return false
			}
			if d := m.Eval(a, a); d != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: MAE <= Chebyshev and MAE <= RMSE (Jensen).
func TestMeasureOrderingProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 2 {
			return true
		}
		a := make([]float64, len(raw))
		b := make([]float64, len(raw))
		for i, v := range raw {
			v = math.Mod(v, 1e4)
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			a[i] = v
			b[i] = -v
		}
		mae, rmse, cheb := MAE(a, b), RMSE(a, b), Chebyshev(a, b)
		return mae <= cheb+1e-9 && mae <= rmse+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
