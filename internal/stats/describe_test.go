package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMinMaxSumMean(t *testing.T) {
	xs := []float64{3, -1, 4, 1.5}
	if got := Min(xs); got != -1 {
		t.Fatalf("Min = %v", got)
	}
	if got := Max(xs); got != 4 {
		t.Fatalf("Max = %v", got)
	}
	if got := Sum(xs); !almostEqual(got, 7.5, 1e-12) {
		t.Fatalf("Sum = %v", got)
	}
	if got := Mean(xs); !almostEqual(got, 1.875, 1e-12) {
		t.Fatalf("Mean = %v", got)
	}
}

func TestEmptyStats(t *testing.T) {
	for name, got := range map[string]float64{
		"Min":      Min(nil),
		"Max":      Max(nil),
		"Mean":     Mean(nil),
		"Variance": Variance(nil),
		"Median":   Median(nil),
	} {
		if !math.IsNaN(got) {
			t.Errorf("%s(nil) = %v, want NaN", name, got)
		}
	}
}

func TestVarianceStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEqual(got, 4, 1e-12) {
		t.Fatalf("Variance = %v, want 4", got)
	}
	if got := Std(xs); !almostEqual(got, 2, 1e-12) {
		t.Fatalf("Std = %v, want 2", got)
	}
}

func TestMedianOddEven(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Fatalf("Median odd = %v", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); !almostEqual(got, 2.5, 1e-12) {
		t.Fatalf("Median even = %v", got)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := Quantile(xs, 0); got != 1 {
		t.Fatalf("Q0 = %v", got)
	}
	if got := Quantile(xs, 1); got != 5 {
		t.Fatalf("Q1 = %v", got)
	}
	if got := Quantile(xs, 0.25); got != 2 {
		t.Fatalf("Q.25 = %v", got)
	}
	if got := Quantile(xs, -0.1); !math.IsNaN(got) {
		t.Fatalf("invalid q = %v, want NaN", got)
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{5, 1, 3}
	_ = Quantile(xs, 0.5)
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Fatalf("Quantile mutated input: %v", xs)
	}
}

func TestDescribe(t *testing.T) {
	xs := []float64{1, 2, 2, 1, 3}
	d := Describe(xs)
	if d.Length != 5 {
		t.Fatalf("Length = %d", d.Length)
	}
	if d.Min != 1 || d.Max != 3 || d.Range != 2 {
		t.Fatalf("min/max/range = %v/%v/%v", d.Min, d.Max, d.Range)
	}
	if d.Median != 2 {
		t.Fatalf("Median = %v", d.Median)
	}
	// Deltas: +1, 0, -1, +2 -> up 2/4, eq 1/4, down 1/4, mean delta 0.5
	if !almostEqual(d.PUp, 0.5, 1e-12) || !almostEqual(d.PEq, 0.25, 1e-12) || !almostEqual(d.PDown, 0.25, 1e-12) {
		t.Fatalf("p up/eq/down = %v/%v/%v", d.PUp, d.PEq, d.PDown)
	}
	if !almostEqual(d.MeanDelta, 0.5, 1e-12) {
		t.Fatalf("MeanDelta = %v", d.MeanDelta)
	}
}

func TestDescribeSingle(t *testing.T) {
	d := Describe([]float64{7})
	if d.Length != 1 || d.Min != 7 || d.Max != 7 {
		t.Fatalf("Describe single: %+v", d)
	}
	if d.PUp != 0 || d.PEq != 0 || d.PDown != 0 {
		t.Fatalf("probabilities of single-point series should be zero: %+v", d)
	}
}

// Property: p-up + p-eq + p-down == 1 for any series with >= 2 points.
func TestDescribeProbabilitiesSumToOne(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 2 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			xs[i] = v
		}
		d := Describe(xs)
		return almostEqual(d.PUp+d.PEq+d.PDown, 1, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Min <= Median <= Max and Min <= Mean <= Max.
func TestDescribeOrderingProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			v = math.Mod(v, 1e9)
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			xs[i] = v
		}
		lo, hi := Min(xs), Max(xs)
		med, mean := Median(xs), Mean(xs)
		return lo <= med+1e-9 && med <= hi+1e-9 && lo <= mean+1e-9 && mean <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
