package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBoxCoxLogCase(t *testing.T) {
	xs := []float64{1, math.E, math.E * math.E}
	ys, err := BoxCox(xs, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 1, 2}
	for i := range ys {
		if !almostEqual(ys[i], want[i], 1e-12) {
			t.Fatalf("BoxCox log: ys[%d] = %v, want %v", i, ys[i], want[i])
		}
	}
}

func TestBoxCoxLambdaOneIsShift(t *testing.T) {
	xs := []float64{1, 2, 3}
	ys, err := BoxCox(xs, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ys {
		if !almostEqual(ys[i], xs[i]-1, 1e-12) {
			t.Fatalf("BoxCox(1): ys[%d] = %v, want %v", i, ys[i], xs[i]-1)
		}
	}
}

func TestBoxCoxRejectsNonPositive(t *testing.T) {
	if _, err := BoxCox([]float64{1, 0, 2}, 0.5); err == nil {
		t.Fatal("expected error for non-positive input")
	}
	if _, err := BoxCox([]float64{-1}, 0); err == nil {
		t.Fatal("expected error for negative input")
	}
}

// Property: BoxCoxInverse(BoxCox(x)) == x for positive data and several lambdas.
func TestBoxCoxRoundtripProperty(t *testing.T) {
	lambdas := []float64{-0.5, 0, 0.25, 0.5, 1, 2}
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			v = math.Abs(math.Mod(v, 1e3)) + 0.1 // strictly positive, bounded
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 1
			}
			xs[i] = v
		}
		for _, lam := range lambdas {
			ys, err := BoxCox(xs, lam)
			if err != nil {
				return false
			}
			back := BoxCoxInverse(ys, lam)
			for i := range xs {
				if !almostEqual(back[i], xs[i], 1e-6*math.Max(1, xs[i])) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestGuerreroLambdaFallsBackOnShortInput(t *testing.T) {
	if got := GuerreroLambda([]float64{1, 2, 3}, 12); got != 1 {
		t.Fatalf("GuerreroLambda short input = %v, want 1", got)
	}
	if got := GuerreroLambda([]float64{1, -2, 3, 4, 5, 6, 7, 8}, 2); got != 1 {
		t.Fatalf("GuerreroLambda non-positive = %v, want 1", got)
	}
}

func TestGuerreroLambdaStabilizesMultiplicativeSeries(t *testing.T) {
	// Multiplicative seasonality: amplitude grows with level, so the log
	// transform (lambda near 0) should be preferred over identity.
	n, period := 240, 12
	xs := make([]float64, n)
	for i := range xs {
		level := 10 * math.Exp(0.01*float64(i))
		xs[i] = level * (1 + 0.5*math.Sin(2*math.Pi*float64(i)/float64(period)))
	}
	lam := GuerreroLambda(xs, period)
	if lam > 0.5 {
		t.Fatalf("GuerreroLambda = %v, want <= 0.5 for multiplicative series", lam)
	}
}

func TestStandardizeRoundtrip(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	ys, mean, std := Standardize(xs)
	if !almostEqual(Mean(ys), 0, 1e-12) {
		t.Fatalf("standardized mean = %v", Mean(ys))
	}
	if !almostEqual(Std(ys), 1, 1e-12) {
		t.Fatalf("standardized std = %v", Std(ys))
	}
	back := Destandardize(ys, mean, std)
	for i := range xs {
		if !almostEqual(back[i], xs[i], 1e-9) {
			t.Fatalf("roundtrip[%d] = %v, want %v", i, back[i], xs[i])
		}
	}
}

func TestStandardizeConstantSeries(t *testing.T) {
	xs := []float64{5, 5, 5}
	ys, mean, std := Standardize(xs)
	if std != 1 {
		t.Fatalf("std fallback = %v, want 1", std)
	}
	if mean != 5 {
		t.Fatalf("mean = %v", mean)
	}
	for _, y := range ys {
		if y != 0 {
			t.Fatalf("standardized constant should be 0, got %v", y)
		}
	}
}
