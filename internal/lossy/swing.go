package lossy

// SwingSegment is one linear segment of a Swing-filter compression:
// points t in [Start, Start+Length) reconstruct as
// StartValue + Slope * (t - Start).
type SwingSegment struct {
	Start      int
	Length     int
	StartValue float64
	Slope      float64
}

// SwingSegments runs the Swing filter [28] and returns the raw
// segmentation: an online piecewise-linear approximation where each segment
// anchors at its first point and maintains the cone of slopes keeping every
// subsequent point within errBound; when the cone collapses, the segment is
// emitted with the cone-midpoint slope and a new segment starts at the
// violating point. The segment form is what the block-codec layer
// serializes.
func SwingSegments(xs []float64, errBound float64) []SwingSegment {
	n := len(xs)
	var segs []SwingSegment
	i := 0
	for i < n {
		if i == n-1 {
			segs = append(segs, SwingSegment{Start: i, Length: 1, StartValue: xs[i]})
			break
		}
		y0 := xs[i]
		// Initialize the cone from the second point of the segment.
		lo := (xs[i+1] - errBound - y0)
		hi := (xs[i+1] + errBound - y0)
		j := i + 2
		for j < n {
			dt := float64(j - i)
			nl := (xs[j] - errBound - y0) / dt
			nh := (xs[j] + errBound - y0) / dt
			if nl < lo {
				nl = lo
			}
			if nh > hi {
				nh = hi
			}
			if nl > nh {
				break // point j collapses the cone; do not absorb its bounds
			}
			lo, hi = nl, nh
			j++
		}
		segs = append(segs, SwingSegment{
			Start:      i,
			Length:     j - i,
			StartValue: y0,
			Slope:      (lo + hi) / 2,
		})
		i = j
	}
	return segs
}

// SwingDecode reconstructs the dense series from Swing segments.
func SwingDecode(n int, segs []SwingSegment) []float64 {
	out := make([]float64, n)
	for _, s := range segs {
		for t := 0; t < s.Length; t++ {
			out[s.Start+t] = s.StartValue + s.Slope*float64(t)
		}
	}
	return out
}

// Swing compresses xs with the Swing filter (see SwingSegments).
func Swing(xs []float64, errBound float64) *Compressed {
	segs := SwingSegments(xs, errBound)
	n := len(xs)
	return &Compressed{
		Method:  "SWING",
		N:       n,
		Scalars: 2 * len(segs), // (start value or slope) + length per segment
		decode:  func() []float64 { return SwingDecode(n, segs) },
	}
}

// SwingCompressor adapts Swing to the knob-driven Compressor interface.
type SwingCompressor struct{}

// Name returns "SWING".
func (SwingCompressor) Name() string { return "SWING" }

// CompressParam maps the knob to an error bound and compresses.
func (SwingCompressor) CompressParam(xs []float64, p float64) *Compressed {
	return Swing(xs, errBoundFromParam(xs, p))
}
