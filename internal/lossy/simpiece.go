package lossy

import (
	"math"
	"sort"
)

// spSegment is a Sim-Piece segment before merging: a line anchored at the
// epsilon-quantized intercept B covering [Start, Start+Length) with any
// slope in [AMin, AMax] keeping all points within the error bound.
type spSegment struct {
	Start, Length int
	B             float64
	AMin, AMax    float64
}

// SPSegment is a merged Sim-Piece segment with its final shared slope:
// points t in [Start, Start+Length) reconstruct as B + A*(t-Start).
type SPSegment struct {
	Start, Length int
	B, A          float64
}

// SimPieceSegments implements Sim-Piece [55] and returns the merged
// segmentation: piecewise-linear approximation whose segments anchor at
// epsilon-quantized intercepts, grouped by intercept and merged when their
// feasible slope intervals overlap, so merged segments share a single
// slope. Guarantees per-value error <= errBound. scalars is the paper's
// storage model (one intercept per group, one slope per merged run, one
// timestamp/length per segment); the segment form is what the block-codec
// layer serializes.
func SimPieceSegments(xs []float64, errBound float64) (segs []SPSegment, scalars int) {
	n := len(xs)
	var raw []spSegment
	i := 0
	for i < n {
		b := quantize(xs[i], errBound)
		if i == n-1 {
			raw = append(raw, spSegment{Start: i, Length: 1, B: b})
			break
		}
		aMin, aMax := math.Inf(-1), math.Inf(1)
		j := i + 1
		for j < n {
			dt := float64(j - i)
			nl := (xs[j] - errBound - b) / dt
			nh := (xs[j] + errBound - b) / dt
			if nl < aMin {
				nl = aMin
			}
			if nh > aMax {
				nh = aMax
			}
			if nl > nh {
				break // point j collapses the cone; do not absorb its bounds
			}
			aMin, aMax = nl, nh
			j++
		}
		raw = append(raw, spSegment{Start: i, Length: j - i, B: b, AMin: aMin, AMax: aMax})
		i = j
	}

	// Group by intercept, sort by AMin, merge overlapping slope intervals:
	// every segment in a merged run shares one slope (the intersection
	// midpoint), which is what lets Sim-Piece store fewer slopes.
	groups := make(map[float64][]spSegment)
	for _, s := range raw {
		groups[s.B] = append(groups[s.B], s)
	}
	var emitted []SPSegment
	numGroups := 0
	numSlopes := 0
	for b, segs := range groups {
		numGroups++
		sort.Slice(segs, func(i, j int) bool { return segs[i].AMin < segs[j].AMin })
		k := 0
		for k < len(segs) {
			lo, hi := segs[k].AMin, segs[k].AMax
			run := []spSegment{segs[k]}
			m := k + 1
			for m < len(segs) && segs[m].AMin <= hi && segs[m].AMax >= lo {
				if segs[m].AMax < hi {
					hi = segs[m].AMax
				}
				if segs[m].AMin > lo {
					lo = segs[m].AMin
				}
				run = append(run, segs[m])
				m++
			}
			a := (lo + hi) / 2
			if math.IsInf(a, 0) || math.IsNaN(a) {
				a = 0 // single-point segments have an unconstrained cone
			}
			numSlopes++
			for _, s := range run {
				emitted = append(emitted, SPSegment{Start: s.Start, Length: s.Length, B: b, A: a})
			}
			k = m
		}
	}
	sort.Slice(emitted, func(i, j int) bool { return emitted[i].Start < emitted[j].Start })
	return emitted, numGroups + numSlopes + len(emitted)
}

// SPDecode reconstructs the dense series from Sim-Piece segments.
func SPDecode(n int, segs []SPSegment) []float64 {
	out := make([]float64, n)
	for _, s := range segs {
		for t := 0; t < s.Length; t++ {
			out[s.Start+t] = s.B + s.A*float64(t)
		}
	}
	return out
}

// SimPiece compresses xs with Sim-Piece (see SimPieceSegments).
func SimPiece(xs []float64, errBound float64) *Compressed {
	segs, scalars := SimPieceSegments(xs, errBound)
	n := len(xs)
	return &Compressed{
		Method:  "SP",
		N:       n,
		Scalars: scalars,
		decode:  func() []float64 { return SPDecode(n, segs) },
	}
}

// quantize snaps v to the errBound grid (floor), keeping |v - q| < errBound.
func quantize(v, errBound float64) float64 {
	if errBound <= 0 {
		return v
	}
	return math.Floor(v/errBound) * errBound
}

// SimPieceCompressor adapts Sim-Piece to the knob-driven interface.
type SimPieceCompressor struct{}

// Name returns "SP".
func (SimPieceCompressor) Name() string { return "SP" }

// CompressParam maps the knob to an error bound and compresses.
func (SimPieceCompressor) CompressParam(xs []float64, p float64) *Compressed {
	return SimPiece(xs, errBoundFromParam(xs, p))
}
