package lossy

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func seasonalSeries(n, period int, noise float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = 10 + 5*math.Sin(2*math.Pi*float64(i)/float64(period)) + noise*rng.NormFloat64()
	}
	return xs
}

func maxAbsErr(a, b []float64) float64 {
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func TestPMCPointwiseBound(t *testing.T) {
	xs := seasonalSeries(500, 24, 1.0, 1)
	for _, eb := range []float64{0.1, 0.5, 2.0} {
		c := PMC(xs, eb)
		recon := c.Decompress()
		if got := maxAbsErr(xs, recon); got > eb+1e-12 {
			t.Fatalf("PMC eb=%v: max error %v exceeds bound", eb, got)
		}
	}
}

func TestPMCConstantSeriesOneSegment(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = 5
	}
	c := PMC(xs, 0.1)
	if c.Scalars != 2 {
		t.Fatalf("constant PMC stored %d scalars, want 2", c.Scalars)
	}
	if c.CompressionRatio() != 50 {
		t.Fatalf("CR = %v, want 50", c.CompressionRatio())
	}
}

func TestPMCLargerBoundFewerSegments(t *testing.T) {
	xs := seasonalSeries(500, 24, 0.5, 2)
	small := PMC(xs, 0.05)
	large := PMC(xs, 1.0)
	if large.Scalars > small.Scalars {
		t.Fatalf("larger bound produced more segments: %d > %d", large.Scalars, small.Scalars)
	}
}

func TestSwingPointwiseBound(t *testing.T) {
	xs := seasonalSeries(500, 24, 0.5, 3)
	for _, eb := range []float64{0.1, 0.5, 2.0} {
		c := Swing(xs, eb)
		recon := c.Decompress()
		if got := maxAbsErr(xs, recon); got > eb+1e-9 {
			t.Fatalf("Swing eb=%v: max error %v exceeds bound", eb, got)
		}
	}
}

func TestSwingLinearSeriesOneSegment(t *testing.T) {
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = 3 + 0.5*float64(i)
	}
	c := Swing(xs, 0.01)
	if c.Scalars != 2 {
		t.Fatalf("linear Swing stored %d scalars, want 2", c.Scalars)
	}
	if got := maxAbsErr(xs, c.Decompress()); got > 0.01 {
		t.Fatalf("linear reconstruction error %v", got)
	}
}

func TestSwingBeatsPMCOnLinearData(t *testing.T) {
	xs := make([]float64, 300)
	for i := range xs {
		xs[i] = float64(i) * 0.3
	}
	sw := Swing(xs, 0.5)
	pm := PMC(xs, 0.5)
	if sw.Scalars >= pm.Scalars {
		t.Fatalf("Swing (%d scalars) should beat PMC (%d) on a ramp", sw.Scalars, pm.Scalars)
	}
}

func TestSimPiecePointwiseBound(t *testing.T) {
	xs := seasonalSeries(500, 24, 0.5, 4)
	for _, eb := range []float64{0.1, 0.5, 2.0} {
		c := SimPiece(xs, eb)
		recon := c.Decompress()
		if got := maxAbsErr(xs, recon); got > eb+1e-9 {
			t.Fatalf("SimPiece eb=%v: max error %v exceeds bound", eb, got)
		}
	}
}

func TestSimPieceCoversAllPoints(t *testing.T) {
	xs := seasonalSeries(97, 10, 0.8, 5) // odd length, noisy
	c := SimPiece(xs, 0.3)
	recon := c.Decompress()
	if len(recon) != len(xs) {
		t.Fatalf("recon length %d != %d", len(recon), len(xs))
	}
	if got := maxAbsErr(xs, recon); got > 0.3+1e-9 {
		t.Fatalf("coverage gap: max error %v", got)
	}
}

func TestSimPieceSharesSlopesAcrossSegments(t *testing.T) {
	// Periodic data with repeating shapes should let Sim-Piece merge slope
	// intervals and store fewer scalars than 2*#segments (Swing's cost).
	xs := seasonalSeries(2000, 20, 0.05, 6)
	eb := 0.2
	sp := SimPiece(xs, eb)
	sw := Swing(xs, eb)
	if sp.Scalars >= 2*sw.Scalars {
		t.Fatalf("Sim-Piece merging ineffective: SP=%d scalars vs SWING=%d", sp.Scalars, sw.Scalars)
	}
}

func TestFFTTopKPerfectWithAllCoefficients(t *testing.T) {
	xs := seasonalSeries(128, 16, 0.3, 7)
	c := FFTTopK(xs, 65) // full half spectrum for n=128
	if got := maxAbsErr(xs, c.Decompress()); got > 1e-9 {
		t.Fatalf("full-spectrum FFT reconstruction error %v", got)
	}
}

func TestFFTTopKSingleToneOneCoefficient(t *testing.T) {
	n := 256
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = math.Cos(2 * math.Pi * 8 * float64(i) / float64(n))
	}
	c := FFTTopK(xs, 2) // DC + the tone bin
	if got := maxAbsErr(xs, c.Decompress()); got > 1e-9 {
		t.Fatalf("single-tone reconstruction error %v", got)
	}
}

func TestFFTTopKOddLength(t *testing.T) {
	xs := seasonalSeries(101, 10, 0.2, 8)
	c := FFTTopK(xs, 51)
	if got := maxAbsErr(xs, c.Decompress()); got > 1e-9 {
		t.Fatalf("odd-length full reconstruction error %v", got)
	}
}

func TestFFTTopKEmpty(t *testing.T) {
	c := FFTTopK(nil, 3)
	if len(c.Decompress()) != 0 {
		t.Fatal("empty input should decompress to empty")
	}
}

func TestCompressedRatioAccounting(t *testing.T) {
	xs := seasonalSeries(300, 20, 0.1, 9)
	c := FFTTopK(xs, 10)
	if c.Scalars != 30 {
		t.Fatalf("FFT scalars = %d, want 30", c.Scalars)
	}
	if got := c.CompressionRatio(); math.Abs(got-10) > 1e-9 {
		t.Fatalf("CR = %v, want 10", got)
	}
}

func TestSearchACFBoundFindsCompressiveSetting(t *testing.T) {
	xs := seasonalSeries(1000, 48, 0.3, 10)
	opt := BoundOptions{Lags: 48, Epsilon: 0.02, Measure: stats.MeasureMAE}
	for _, c := range []Compressor{PMCCompressor{}, SwingCompressor{}, SimPieceCompressor{}, FFTCompressor{}} {
		res := SearchACFBound(xs, c, opt)
		if res == nil {
			t.Fatalf("%s: no feasible parameter found", c.Name())
		}
		if res.Deviation > opt.Epsilon {
			t.Fatalf("%s: deviation %v exceeds bound", c.Name(), res.Deviation)
		}
		if res.Compressed.CompressionRatio() <= 1 {
			t.Fatalf("%s: CR %v <= 1", c.Name(), res.Compressed.CompressionRatio())
		}
	}
}

func TestSearchACFBoundMonotoneInEpsilon(t *testing.T) {
	xs := seasonalSeries(800, 24, 0.5, 11)
	tight := SearchACFBound(xs, SwingCompressor{}, BoundOptions{Lags: 24, Epsilon: 0.005, Measure: stats.MeasureMAE})
	loose := SearchACFBound(xs, SwingCompressor{}, BoundOptions{Lags: 24, Epsilon: 0.1, Measure: stats.MeasureMAE})
	if tight == nil || loose == nil {
		t.Fatal("search failed")
	}
	if loose.Compressed.CompressionRatio() < tight.Compressed.CompressionRatio() {
		t.Fatalf("looser bound compressed less: %v < %v",
			loose.Compressed.CompressionRatio(), tight.Compressed.CompressionRatio())
	}
}

func TestSearchRatioReachesTarget(t *testing.T) {
	xs := seasonalSeries(1000, 48, 0.3, 12)
	for _, target := range []float64{2, 5, 10} {
		c := SearchRatio(xs, PMCCompressor{}, target, 0)
		if c.CompressionRatio() < target {
			t.Fatalf("target %v: CR %v", target, c.CompressionRatio())
		}
	}
}

func TestACFDeviationIdenticalIsZero(t *testing.T) {
	xs := seasonalSeries(200, 20, 0.5, 13)
	opt := BoundOptions{Lags: 20, Measure: stats.MeasureMAE}
	if d := ACFDeviation(xs, xs, opt); d != 0 {
		t.Fatalf("self deviation = %v", d)
	}
}

// Property: the pointwise error bound holds for all three PLA methods on
// random inputs and random bounds.
func TestPLABoundProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(300)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 20
		}
		eb := 0.01 + rng.Float64()*5
		for _, c := range []*Compressed{PMC(xs, eb), Swing(xs, eb), SimPiece(xs, eb)} {
			if maxAbsErr(xs, c.Decompress()) > eb+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
