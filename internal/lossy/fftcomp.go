package lossy

import (
	"math"
	"sort"

	"repro/internal/fft"
)

// FFTTopK compresses xs by keeping only the k highest-magnitude coefficients
// of the half spectrum (DC through Nyquist; the other half is implied by
// conjugate symmetry for real input) and zeroing the rest [20]. Each kept
// coefficient stores (index, real, imaginary) = 3 scalars.
func FFTTopK(xs []float64, k int) *Compressed {
	n := len(xs)
	if n == 0 {
		return &Compressed{Method: "FFT", N: 0, Scalars: 0, decode: func() []float64 { return nil }}
	}
	coeffs := fft.ForwardReal(xs)
	half := n/2 + 1
	if k < 1 {
		k = 1
	}
	if k > half {
		k = half
	}
	idx := make([]int, half)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ma := real(coeffs[idx[a]])*real(coeffs[idx[a]]) + imag(coeffs[idx[a]])*imag(coeffs[idx[a]])
		mb := real(coeffs[idx[b]])*real(coeffs[idx[b]]) + imag(coeffs[idx[b]])*imag(coeffs[idx[b]])
		return ma > mb
	})
	type kept struct {
		i int
		c complex128
	}
	keep := make([]kept, k)
	for j := 0; j < k; j++ {
		keep[j] = kept{idx[j], coeffs[idx[j]]}
	}
	return &Compressed{
		Method:  "FFT",
		N:       n,
		Scalars: 3 * k,
		decode: func() []float64 {
			full := make([]complex128, n)
			for _, kc := range keep {
				full[kc.i] = kc.c
				// Mirror into the conjugate-symmetric half (skip DC and, for
				// even n, the Nyquist bin, which are their own mirrors).
				if kc.i != 0 && (n%2 != 0 || kc.i != n/2) {
					full[n-kc.i] = complex(real(kc.c), -imag(kc.c))
				}
			}
			return fft.InverseReal(full)
		},
	}
}

// FFTCompressor adapts FFTTopK to the knob-driven Compressor interface.
type FFTCompressor struct{}

// Name returns "FFT".
func (FFTCompressor) Name() string { return "FFT" }

// CompressParam maps the knob p in [0,1] to a kept-coefficient count:
// p = 0 keeps the whole half spectrum, p = 1 keeps a single coefficient,
// geometrically spaced in between.
func (FFTCompressor) CompressParam(xs []float64, p float64) *Compressed {
	n := len(xs)
	half := n/2 + 1
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	k := int(math.Round(math.Pow(float64(half), 1-p)))
	if k < 1 {
		k = 1
	}
	return FFTTopK(xs, k)
}
