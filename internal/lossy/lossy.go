// Package lossy implements the non-line-simplification lossy compression
// baselines of the paper (§5.1): Poor Man's Compression (PMC) [58], the
// Swing filter [28], Sim-Piece [55], and an FFT coefficient-truncation
// compressor [20], plus the trial-and-error parameter search the paper uses
// to hold these methods to an ACF deviation bound.
package lossy

import (
	"math"

	"repro/internal/acf"
	"repro/internal/series"
	"repro/internal/stats"
)

// Compressed is a decodable compact representation of a series.
type Compressed struct {
	// Method names the producing algorithm.
	Method string
	// N is the original series length.
	N int
	// Scalars counts the stored scalar values (model parameters, indices,
	// coefficients). The paper's element-count compression ratio is
	// N / Scalars.
	Scalars int

	decode func() []float64
}

// Decompress reconstructs the full series.
func (c *Compressed) Decompress() []float64 { return c.decode() }

// CompressionRatio returns N / Scalars.
func (c *Compressed) CompressionRatio() float64 {
	if c.Scalars == 0 {
		return float64(c.N)
	}
	return float64(c.N) / float64(c.Scalars)
}

// Compressor is a lossy method driven by a single abstract knob p in [0, 1]
// where larger p compresses more aggressively. The knob lets the
// trial-and-error ACF-bound search treat all methods uniformly, mirroring
// the paper's parameter exploration.
type Compressor interface {
	// Name returns the method's short name (PMC, SWING, SP, FFT).
	Name() string
	// CompressParam compresses xs at knob p in [0, 1].
	CompressParam(xs []float64, p float64) *Compressed
}

// errBoundFromParam maps the abstract knob to an absolute per-value error
// bound: a fraction of the value range, exponentially spaced so small knobs
// explore fine error bounds.
func errBoundFromParam(xs []float64, p float64) float64 {
	lo, hi := stats.Min(xs), stats.Max(xs)
	rng := hi - lo
	if rng == 0 {
		rng = 1
	}
	if p <= 0 {
		return 1e-12 * rng
	}
	if p > 1 {
		p = 1
	}
	// p=0 -> ~1e-6 of range, p=1 -> half the range.
	return rng * math.Pow(10, -6+p*(math.Log10(0.5)+6))
}

// BoundOptions parameterizes the ACF-deviation evaluation of a compressor
// (the statistic configuration matches the CAMEO run it is compared with).
type BoundOptions struct {
	Lags      int
	Epsilon   float64
	Measure   stats.Measure
	AggWindow int
	AggFunc   series.AggFunc
	// Iters is the number of bisection steps (default 24).
	Iters int
}

// ACFDeviation computes D(S(xs), S(recon)) for dense series under the
// options' aggregation settings.
func ACFDeviation(xs, recon []float64, opt BoundOptions) float64 {
	a, b := xs, recon
	if opt.AggWindow >= 2 {
		a = series.Aggregate(xs, opt.AggWindow, opt.AggFunc)
		b = series.Aggregate(recon, opt.AggWindow, opt.AggFunc)
	}
	d := opt.Measure.Eval(acf.ACF(a, opt.Lags), acf.ACF(b, opt.Lags))
	if math.IsNaN(d) {
		return math.Inf(1)
	}
	return d
}

// BoundResult reports the outcome of a trial-and-error search.
type BoundResult struct {
	Compressed *Compressed
	Deviation  float64
	Param      float64
}

// SearchACFBound bisects the compressor's knob for the most aggressive
// setting whose ACF deviation stays within opt.Epsilon, replicating the
// paper's trial-and-error exploration ("since enforcing the ACF constraint
// while compressing is not straightforward"). Returns nil if even the
// mildest setting violates the bound.
func SearchACFBound(xs []float64, c Compressor, opt BoundOptions) *BoundResult {
	iters := opt.Iters
	if iters <= 0 {
		iters = 24
	}
	eval := func(p float64) (*Compressed, float64) {
		comp := c.CompressParam(xs, p)
		return comp, ACFDeviation(xs, comp.Decompress(), opt)
	}
	var best *BoundResult
	consider := func(p float64, comp *Compressed, dev float64) {
		if dev > opt.Epsilon {
			return
		}
		if best == nil || comp.CompressionRatio() > best.Compressed.CompressionRatio() {
			best = &BoundResult{Compressed: comp, Deviation: dev, Param: p}
		}
	}
	lo, hi := 0.0, 1.0
	if comp, dev := eval(lo); dev <= opt.Epsilon {
		consider(lo, comp, dev)
	} else {
		return nil // even the mildest parameter violates the bound
	}
	if comp, dev := eval(hi); dev <= opt.Epsilon {
		consider(hi, comp, dev)
		return best // most aggressive setting already satisfies the bound
	}
	for i := 0; i < iters; i++ {
		mid := (lo + hi) / 2
		comp, dev := eval(mid)
		if dev <= opt.Epsilon {
			consider(mid, comp, dev)
			lo = mid
		} else {
			hi = mid
		}
	}
	return best
}

// SearchRatio bisects the knob for the smallest parameter reaching the
// target element-count compression ratio (used by the forecasting
// experiments that control CR instead of the bound). Returns the compressed
// result closest to the target from above, or the most aggressive available.
func SearchRatio(xs []float64, c Compressor, targetCR float64, iters int) *Compressed {
	if iters <= 0 {
		iters = 24
	}
	lo, hi := 0.0, 1.0
	best := c.CompressParam(xs, hi)
	if best.CompressionRatio() < targetCR {
		return best // cannot reach the target; return the max effort
	}
	for i := 0; i < iters; i++ {
		mid := (lo + hi) / 2
		comp := c.CompressParam(xs, mid)
		if comp.CompressionRatio() >= targetCR {
			best = comp
			hi = mid
		} else {
			lo = mid
		}
	}
	return best
}
