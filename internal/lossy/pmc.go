package lossy

// PMCSegment is one constant segment of a PMC compression: all points in
// [Start, Start+Length) are reconstructed as Value.
type PMCSegment struct {
	Start  int
	Length int
	Value  float64
}

// PMCSegments runs Poor Man's Compression (midrange variant) [58] and
// returns the raw segmentation: the series is greedily cut into maximal
// segments whose value spread fits within 2*errBound; each segment stores a
// single constant (the midrange), which guarantees a per-value
// reconstruction error of at most errBound. The segment form is what the
// block-codec layer serializes.
func PMCSegments(xs []float64, errBound float64) []PMCSegment {
	var segs []PMCSegment
	n := len(xs)
	i := 0
	for i < n {
		lo, hi := xs[i], xs[i]
		j := i + 1
		for j < n {
			nl, nh := lo, hi
			if xs[j] < nl {
				nl = xs[j]
			}
			if xs[j] > nh {
				nh = xs[j]
			}
			if nh-nl > 2*errBound {
				break
			}
			lo, hi = nl, nh
			j++
		}
		segs = append(segs, PMCSegment{Start: i, Length: j - i, Value: (lo + hi) / 2})
		i = j
	}
	return segs
}

// PMCDecode reconstructs the dense series from PMC segments.
func PMCDecode(n int, segs []PMCSegment) []float64 {
	out := make([]float64, n)
	for _, s := range segs {
		for t := s.Start; t < s.Start+s.Length; t++ {
			out[t] = s.Value
		}
	}
	return out
}

// PMC compresses xs with Poor Man's Compression (see PMCSegments).
func PMC(xs []float64, errBound float64) *Compressed {
	segs := PMCSegments(xs, errBound)
	n := len(xs)
	return &Compressed{
		Method:  "PMC",
		N:       n,
		Scalars: 2 * len(segs), // value + length per segment
		decode:  func() []float64 { return PMCDecode(n, segs) },
	}
}

// PMCCompressor adapts PMC to the knob-driven Compressor interface.
type PMCCompressor struct{}

// Name returns "PMC".
func (PMCCompressor) Name() string { return "PMC" }

// CompressParam maps the knob to an error bound and compresses.
func (PMCCompressor) CompressParam(xs []float64, p float64) *Compressed {
	return PMC(xs, errBoundFromParam(xs, p))
}
