package fft

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"
)

// naiveDFT is the O(n^2) reference implementation.
func naiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var s complex128
		for t := 0; t < n; t++ {
			ang := -2 * math.Pi * float64(k) * float64(t) / float64(n)
			s += x[t] * cmplx.Exp(complex(0, ang))
		}
		out[k] = s
	}
	return out
}

func complexClose(a, b []complex128, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if cmplx.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}

func TestForwardMatchesNaivePow2(t *testing.T) {
	x := make([]complex128, 16)
	for i := range x {
		x[i] = complex(math.Sin(float64(i)), math.Cos(2*float64(i)))
	}
	if !complexClose(Forward(x), naiveDFT(x), 1e-9) {
		t.Fatal("radix-2 FFT does not match naive DFT")
	}
}

func TestForwardMatchesNaiveArbitraryN(t *testing.T) {
	for _, n := range []int{3, 5, 6, 7, 12, 15, 31, 100} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(float64(i%7)-3, float64(i%5)-2)
		}
		if !complexClose(Forward(x), naiveDFT(x), 1e-8) {
			t.Fatalf("Bluestein FFT does not match naive DFT for n=%d", n)
		}
	}
}

func TestForwardEmptyAndSingle(t *testing.T) {
	if got := Forward(nil); len(got) != 0 {
		t.Fatalf("Forward(nil) len = %d", len(got))
	}
	x := []complex128{complex(3, -1)}
	got := Forward(x)
	if len(got) != 1 || got[0] != x[0] {
		t.Fatalf("Forward single = %v", got)
	}
}

func TestForwardDoesNotMutateInput(t *testing.T) {
	x := []complex128{1, 2, 3, 4}
	orig := append([]complex128(nil), x...)
	_ = Forward(x)
	for i := range x {
		if x[i] != orig[i] {
			t.Fatal("Forward mutated its input")
		}
	}
}

func TestInverseRoundtripPow2(t *testing.T) {
	x := make([]complex128, 64)
	for i := range x {
		x[i] = complex(float64(i)*0.1, -float64(i)*0.05)
	}
	if !complexClose(Inverse(Forward(x)), x, 1e-9) {
		t.Fatal("Inverse(Forward(x)) != x for pow2 length")
	}
}

func TestInverseRoundtripArbitrary(t *testing.T) {
	for _, n := range []int{3, 7, 10, 33, 101} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(math.Sin(0.3*float64(i)), math.Cos(0.7*float64(i)))
		}
		if !complexClose(Inverse(Forward(x)), x, 1e-8) {
			t.Fatalf("roundtrip failed for n=%d", n)
		}
	}
}

func TestForwardRealDCComponent(t *testing.T) {
	x := []float64{1, 1, 1, 1}
	coeffs := ForwardReal(x)
	if cmplx.Abs(coeffs[0]-4) > 1e-12 {
		t.Fatalf("DC coefficient = %v, want 4", coeffs[0])
	}
	for k := 1; k < 4; k++ {
		if cmplx.Abs(coeffs[k]) > 1e-12 {
			t.Fatalf("coefficient %d = %v, want 0", k, coeffs[k])
		}
	}
}

func TestForwardRealSingleTone(t *testing.T) {
	n := 32
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Cos(2 * math.Pi * 4 * float64(i) / float64(n))
	}
	mags := Magnitudes(ForwardReal(x))
	// Energy should concentrate at bins 4 and n-4.
	for k, m := range mags {
		if k == 4 || k == n-4 {
			if math.Abs(m-float64(n)/2) > 1e-9 {
				t.Fatalf("bin %d magnitude = %v, want %v", k, m, float64(n)/2)
			}
		} else if m > 1e-9 {
			t.Fatalf("bin %d magnitude = %v, want ~0", k, m)
		}
	}
}

func TestInverseRealRoundtrip(t *testing.T) {
	x := []float64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5}
	back := InverseReal(ForwardReal(x))
	for i := range x {
		if math.Abs(back[i]-x[i]) > 1e-9 {
			t.Fatalf("roundtrip[%d] = %v, want %v", i, back[i], x[i])
		}
	}
}

// Property: Parseval's theorem — sum |x|^2 == (1/n) sum |X|^2.
func TestParsevalProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 || len(raw) > 512 {
			return true
		}
		x := make([]float64, len(raw))
		var e float64
		for i, v := range raw {
			v = math.Mod(v, 1e3)
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			x[i] = v
			e += v * v
		}
		coeffs := ForwardReal(x)
		var fe float64
		for _, c := range coeffs {
			fe += real(c)*real(c) + imag(c)*imag(c)
		}
		fe /= float64(len(x))
		return math.Abs(e-fe) <= 1e-6*math.Max(1, e)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: linearity — F(a*x + y) == a*F(x) + F(y).
func TestLinearityProperty(t *testing.T) {
	f := func(seed uint8) bool {
		n := 3 + int(seed)%60
		x := make([]complex128, n)
		y := make([]complex128, n)
		for i := range x {
			x[i] = complex(math.Sin(float64(i)+float64(seed)), 0.5)
			y[i] = complex(0.3*float64(i), math.Cos(float64(i)))
		}
		a := complex(2.5, -1)
		combined := make([]complex128, n)
		for i := range combined {
			combined[i] = a*x[i] + y[i]
		}
		fx, fy, fc := Forward(x), Forward(y), Forward(combined)
		for i := range fc {
			if cmplx.Abs(fc[i]-(a*fx[i]+fy[i])) > 1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkForwardPow2_4096(b *testing.B) {
	x := make([]complex128, 4096)
	for i := range x {
		x[i] = complex(math.Sin(float64(i)), 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Forward(x)
	}
}

func BenchmarkForwardBluestein_4095(b *testing.B) {
	x := make([]complex128, 4095)
	for i := range x {
		x[i] = complex(math.Sin(float64(i)), 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Forward(x)
	}
}
