// Package fft implements the fast Fourier transform used by the FFT lossy
// compression baseline (paper §5.1, [20]) and the DFT compressor of the
// Figure 1 motivation study.
//
// The implementation is self-contained: an iterative radix-2 Cooley-Tukey
// kernel for power-of-two lengths and Bluestein's chirp-z algorithm for
// arbitrary lengths, so any series length can be transformed exactly.
package fft

import "math"

// Forward computes the discrete Fourier transform of x (any length) and
// returns a freshly allocated coefficient slice:
//
//	X[k] = sum_t x[t] * exp(-2*pi*i*k*t/n)
func Forward(x []complex128) []complex128 {
	out := append([]complex128(nil), x...)
	transform(out, false)
	return out
}

// Inverse computes the inverse DFT of X with the 1/n normalization, so that
// Inverse(Forward(x)) == x up to floating-point error.
func Inverse(x []complex128) []complex128 {
	out := append([]complex128(nil), x...)
	transform(out, true)
	n := complex(float64(len(out)), 0)
	if len(out) > 0 {
		for i := range out {
			out[i] /= n
		}
	}
	return out
}

// ForwardReal transforms a real-valued series. It is a convenience wrapper
// that widens to complex128.
func ForwardReal(x []float64) []complex128 {
	cx := make([]complex128, len(x))
	for i, v := range x {
		cx[i] = complex(v, 0)
	}
	transform(cx, false)
	return cx
}

// InverseReal inverts a coefficient vector and returns the real parts.
// The imaginary parts are discarded; for coefficient vectors obtained from a
// real input they are zero up to rounding.
func InverseReal(coeffs []complex128) []float64 {
	cx := Inverse(coeffs)
	out := make([]float64, len(cx))
	for i, v := range cx {
		out[i] = real(v)
	}
	return out
}

// transform computes the in-place unnormalized DFT (inverse=true conjugates
// the twiddles, producing the unnormalized inverse transform).
func transform(x []complex128, inverse bool) {
	n := len(x)
	if n <= 1 {
		return
	}
	if n&(n-1) == 0 {
		radix2(x, inverse)
		return
	}
	bluestein(x, inverse)
}

// radix2 is the iterative Cooley-Tukey kernel for power-of-two lengths.
func radix2(x []complex128, inverse bool) {
	n := len(x)
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for length := 2; length <= n; length <<= 1 {
		ang := sign * 2 * math.Pi / float64(length)
		wl := complex(math.Cos(ang), math.Sin(ang))
		for start := 0; start < n; start += length {
			w := complex(1, 0)
			half := length / 2
			for k := 0; k < half; k++ {
				u := x[start+k]
				v := x[start+k+half] * w
				x[start+k] = u + v
				x[start+k+half] = u - v
				w *= wl
			}
		}
	}
}

// bluestein computes an arbitrary-length DFT as a convolution, which is in
// turn evaluated with power-of-two radix-2 transforms.
func bluestein(x []complex128, inverse bool) {
	n := len(x)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	// Chirp: w[k] = exp(sign*i*pi*k^2/n). Use k^2 mod 2n to avoid precision
	// loss for large k.
	chirp := make([]complex128, n)
	for k := 0; k < n; k++ {
		kk := int64(k) * int64(k) % int64(2*n)
		ang := sign * math.Pi * float64(kk) / float64(n)
		chirp[k] = complex(math.Cos(ang), math.Sin(ang))
	}
	m := 1
	for m < 2*n-1 {
		m <<= 1
	}
	a := make([]complex128, m)
	b := make([]complex128, m)
	for k := 0; k < n; k++ {
		a[k] = x[k] * chirp[k]
		bc := complex(real(chirp[k]), -imag(chirp[k])) // conj
		b[k] = bc
		if k > 0 {
			b[m-k] = bc
		}
	}
	radix2(a, false)
	radix2(b, false)
	for i := range a {
		a[i] *= b[i]
	}
	radix2(a, true)
	scale := complex(1/float64(m), 0)
	for k := 0; k < n; k++ {
		x[k] = a[k] * scale * chirp[k]
	}
}

// Magnitudes returns |X[k]| for each coefficient.
func Magnitudes(coeffs []complex128) []float64 {
	out := make([]float64, len(coeffs))
	for i, c := range coeffs {
		out[i] = math.Hypot(real(c), imag(c))
	}
	return out
}
