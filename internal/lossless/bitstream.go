// Package lossless implements the XOR-based lossless floating-point codecs
// the paper benchmarks against in its bits-per-value analysis (Table 2):
// Gorilla [76] and Chimp [62], over a shared bitstream layer.
package lossless

import (
	"errors"
	"fmt"
)

// ErrShortStream is returned when a reader runs out of bits mid-value.
var ErrShortStream = errors.New("lossless: bitstream exhausted")

// BitWriter accumulates bits most-significant-first into a byte buffer.
type BitWriter struct {
	buf  []byte
	cur  byte
	free uint // free bits remaining in cur (8 = empty)
	bits int  // total bits written
}

// NewBitWriter returns an empty writer.
func NewBitWriter() *BitWriter { return &BitWriter{free: 8} }

// WriteBit appends a single bit.
func (w *BitWriter) WriteBit(b uint64) {
	w.cur <<= 1
	w.cur |= byte(b & 1)
	w.free--
	w.bits++
	if w.free == 0 {
		w.buf = append(w.buf, w.cur)
		w.cur = 0
		w.free = 8
	}
}

// WriteBits appends the low nbits of v, most significant first.
func (w *BitWriter) WriteBits(v uint64, nbits uint) {
	for i := int(nbits) - 1; i >= 0; i-- {
		w.WriteBit(v >> uint(i))
	}
}

// Bits returns the number of bits written so far.
func (w *BitWriter) Bits() int { return w.bits }

// Bytes flushes the partial byte (zero-padded) and returns the buffer. The
// writer remains usable; subsequent writes continue from the unpadded state.
func (w *BitWriter) Bytes() []byte {
	out := append([]byte(nil), w.buf...)
	if w.free < 8 {
		out = append(out, w.cur<<w.free)
	}
	return out
}

// BitReader consumes bits most-significant-first from a byte buffer.
type BitReader struct {
	data []byte
	pos  int  // byte position
	left uint // unread bits in data[pos] (8 = all)
}

// NewBitReader wraps data.
func NewBitReader(data []byte) *BitReader { return &BitReader{data: data, left: 8} }

// NewBitReaderAt wraps data with the cursor positioned at an absolute bit
// offset, as recorded by a checkpoint mark. Offsets at or beyond the end of
// data are legal: the first read reports ErrShortStream rather than
// panicking, which is the failure mode wanted for corrupt sidecars.
func NewBitReaderAt(data []byte, bit int) *BitReader {
	r := &BitReader{data: data, pos: bit >> 3, left: 8 - uint(bit&7)}
	return r
}

// BitPos returns the absolute bit offset of the next unread bit.
func (r *BitReader) BitPos() int { return r.pos*8 + int(8-r.left) }

// ReadBit returns the next bit.
func (r *BitReader) ReadBit() (uint64, error) {
	if r.pos >= len(r.data) {
		return 0, ErrShortStream
	}
	r.left--
	b := uint64(r.data[r.pos]>>r.left) & 1
	if r.left == 0 {
		r.pos++
		r.left = 8
	}
	return b, nil
}

// ReadBits returns the next nbits as the low bits of a uint64.
func (r *BitReader) ReadBits(nbits uint) (uint64, error) {
	if nbits > 64 {
		return 0, fmt.Errorf("lossless: cannot read %d bits at once", nbits)
	}
	var v uint64
	for i := uint(0); i < nbits; i++ {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		v = v<<1 | b
	}
	return v, nil
}

// Encoded is a compressed representation of a float64 series.
type Encoded struct {
	// Method is "gorilla" or "chimp".
	Method string
	// N is the number of encoded values.
	N int
	// Bits is the exact number of payload bits (excludes byte padding);
	// this is what the paper's Bits/value metric divides by N.
	Bits int
	// Data is the padded byte stream.
	Data []byte
}

// BitsPerValue returns Bits / N (paper §5.1: Bits/v = Bits(X') / |X|).
func (e *Encoded) BitsPerValue() float64 {
	if e.N == 0 {
		return 0
	}
	return float64(e.Bits) / float64(e.N)
}

// Decompress decodes the stream back to the original values.
func (e *Encoded) Decompress() ([]float64, error) {
	switch e.Method {
	case "gorilla":
		return gorillaDecode(e.Data, e.N)
	case "chimp":
		return chimpDecode(e.Data, e.N)
	case "elf":
		return elfDecode(e.Data, e.N)
	default:
		return nil, fmt.Errorf("lossless: unknown method %q", e.Method)
	}
}
