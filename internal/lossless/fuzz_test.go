package lossless

import (
	"math"
	"testing"
)

// FuzzGorillaDecode feeds arbitrary bytes to the Gorilla decoder with
// arbitrary claimed lengths: it must reject or decode, never panic.
func FuzzGorillaDecode(f *testing.F) {
	f.Add([]byte{}, 0)
	f.Add(Gorilla([]float64{1, 2, 3}).Data, 3)
	f.Add(Gorilla([]float64{0, 0, 0, 5}).Data, 4)
	f.Fuzz(func(t *testing.T, data []byte, n int) {
		if n < 0 || n > 1<<12 {
			return
		}
		out, err := (&Encoded{Method: "gorilla", N: n, Data: data}).Decompress()
		if err == nil && len(out) != n {
			t.Fatalf("decoded %d values, claimed %d", len(out), n)
		}
	})
}

// FuzzChimpDecode is the Chimp equivalent.
func FuzzChimpDecode(f *testing.F) {
	f.Add([]byte{}, 0)
	f.Add(Chimp([]float64{1, 2, 3}).Data, 3)
	f.Add(Chimp([]float64{math.Pi, math.Pi, -1}).Data, 3)
	f.Fuzz(func(t *testing.T, data []byte, n int) {
		if n < 0 || n > 1<<12 {
			return
		}
		out, err := (&Encoded{Method: "chimp", N: n, Data: data}).Decompress()
		if err == nil && len(out) != n {
			t.Fatalf("decoded %d values, claimed %d", len(out), n)
		}
	})
}

// FuzzGorillaRoundtrip checks the encoder/decoder pair over arbitrary
// float bit patterns.
func FuzzGorillaRoundtrip(f *testing.F) {
	f.Add(uint64(0), uint64(1), uint64(math.MaxUint64))
	f.Add(math.Float64bits(1.5), math.Float64bits(-1.5), math.Float64bits(math.Inf(1)))
	f.Fuzz(func(t *testing.T, a, b, c uint64) {
		xs := []float64{
			math.Float64frombits(a), math.Float64frombits(b), math.Float64frombits(c),
			math.Float64frombits(a ^ b), math.Float64frombits(b ^ c),
		}
		for _, enc := range []*Encoded{Gorilla(xs), Chimp(xs)} {
			out, err := enc.Decompress()
			if err != nil {
				t.Fatalf("%s failed: %v", enc.Method, err)
			}
			for i := range xs {
				if math.Float64bits(out[i]) != math.Float64bits(xs[i]) {
					t.Fatalf("%s bit mismatch at %d", enc.Method, i)
				}
			}
		}
	})
}
