package lossless

import (
	"math"
	"math/bits"
)

// chimpLeadingRound rounds a leading-zero count down to one of eight
// representable values, as in the Chimp paper [62].
var chimpLeadingRound = [65]int{}

// chimpLeadingRep maps a rounded leading count to its 3-bit code.
var chimpLeadingRep = map[int]uint64{0: 0, 8: 1, 12: 2, 16: 3, 18: 4, 20: 5, 22: 6, 24: 7}

// chimpLeadingValue maps the 3-bit code back to the rounded count.
var chimpLeadingValue = [8]int{0, 8, 12, 16, 18, 20, 22, 24}

func init() {
	thresholds := []int{0, 8, 12, 16, 18, 20, 22, 24}
	for i := 0; i <= 64; i++ {
		r := 0
		for _, t := range thresholds {
			if i >= t {
				r = t
			}
		}
		chimpLeadingRound[i] = r
	}
}

// Chimp compresses values with the Chimp XOR scheme [62], which improves on
// Gorilla for series without many repeating values: a 2-bit flag selects
// between identical value (00), a trailing-zero-rich encoding that stores
// only the center bits (01), and full-tail encodings that either reuse (10)
// or replace (11) the 3-bit leading-zero class.
func Chimp(xs []float64) *Encoded {
	e, _ := ChimpCheckpointed(xs, 0)
	return e
}

// ChimpCheckpointed is Chimp plus a checkpoint sidecar (see
// GorillaCheckpointed). Chimp tracks no trailing window, so its marks carry
// Trailing == -1. The bit stream is identical to Chimp's regardless of
// interval.
func ChimpCheckpointed(xs []float64, interval int) (*Encoded, *Checkpoints) {
	ck := newCheckpoints(interval)
	w := NewBitWriter()
	var prev uint64
	prevLeading := -1
	for i, x := range xs {
		ck.mark(i, w.Bits(), prev, prevLeading, -1)
		cur := math.Float64bits(x)
		if i == 0 {
			w.WriteBits(cur, 64)
			prev = cur
			prevLeading = -1
			continue
		}
		xor := prev ^ cur
		prev = cur
		if xor == 0 {
			w.WriteBits(0b00, 2)
			continue
		}
		leading := chimpLeadingRound[bits.LeadingZeros64(xor)]
		trailing := bits.TrailingZeros64(xor)
		if trailing > 6 {
			// Flag 01: worth storing only the center bits.
			w.WriteBits(0b01, 2)
			w.WriteBits(chimpLeadingRep[leading], 3)
			sig := 64 - leading - trailing
			w.WriteBits(uint64(sig), 6)
			w.WriteBits(xor>>uint(trailing), uint(sig))
			prevLeading = leading
		} else if leading == prevLeading {
			// Flag 10: reuse the previous leading class, store the tail.
			w.WriteBits(0b10, 2)
			w.WriteBits(xor, uint(64-leading))
		} else {
			// Flag 11: new leading class, store the tail.
			w.WriteBits(0b11, 2)
			w.WriteBits(chimpLeadingRep[leading], 3)
			w.WriteBits(xor, uint(64-leading))
			prevLeading = leading
		}
	}
	return &Encoded{Method: "chimp", N: len(xs), Bits: w.Bits(), Data: w.Bytes()}, ck.finish()
}

// chimpDecode reverses Chimp.
func chimpDecode(data []byte, n int) ([]float64, error) {
	r := NewBitReader(data)
	// Cap the allocation hint: n comes from an untrusted header, and the
	// payload-exhaustion checks in the stepper should fire before 8*n bytes
	// are committed to a corrupt claim.
	out := make([]float64, 0, min(n, 1<<16))
	st := freshXORState()
	if err := chimpDecodeFrom(r, &st, 0, n, func(v float64) { out = append(out, v) }); err != nil {
		return nil, err
	}
	return out, nil
}

// chimpDecodeFrom decodes samples [start, hi) of a Chimp stream, with r
// positioned at sample start's first bit and st holding the decoder state
// after sample start-1 (st.trailing is unused). A corrupt st.leading of -1
// on the reuse path asks ReadBits for 65 bits, which errors cleanly.
func chimpDecodeFrom(r *BitReader, st *xorState, start, hi int, emit func(float64)) error {
	for i := start; i < hi; i++ {
		if i == 0 {
			v, err := r.ReadBits(64)
			if err != nil {
				return err
			}
			st.prev = v
			emit(math.Float64frombits(v))
			continue
		}
		flag, err := r.ReadBits(2)
		if err != nil {
			return err
		}
		var xor uint64
		switch flag {
		case 0b00:
			// identical value
		case 0b01:
			code, err := r.ReadBits(3)
			if err != nil {
				return err
			}
			leading := chimpLeadingValue[code]
			sig, err := r.ReadBits(6)
			if err != nil {
				return err
			}
			trailing := 64 - leading - int(sig)
			v, err := r.ReadBits(uint(sig))
			if err != nil {
				return err
			}
			xor = v << uint(trailing)
			st.leading = leading
		case 0b10:
			v, err := r.ReadBits(uint(64 - st.leading))
			if err != nil {
				return err
			}
			xor = v
		default: // 0b11
			code, err := r.ReadBits(3)
			if err != nil {
				return err
			}
			leading := chimpLeadingValue[code]
			v, err := r.ReadBits(uint(64 - leading))
			if err != nil {
				return err
			}
			xor = v
			st.leading = leading
		}
		st.prev ^= xor
		emit(math.Float64frombits(st.prev))
	}
	return nil
}
