package lossless

import (
	"math"
	"math/bits"
)

// chimpLeadingRound rounds a leading-zero count down to one of eight
// representable values, as in the Chimp paper [62].
var chimpLeadingRound = [65]int{}

// chimpLeadingRep maps a rounded leading count to its 3-bit code.
var chimpLeadingRep = map[int]uint64{0: 0, 8: 1, 12: 2, 16: 3, 18: 4, 20: 5, 22: 6, 24: 7}

// chimpLeadingValue maps the 3-bit code back to the rounded count.
var chimpLeadingValue = [8]int{0, 8, 12, 16, 18, 20, 22, 24}

func init() {
	thresholds := []int{0, 8, 12, 16, 18, 20, 22, 24}
	for i := 0; i <= 64; i++ {
		r := 0
		for _, t := range thresholds {
			if i >= t {
				r = t
			}
		}
		chimpLeadingRound[i] = r
	}
}

// Chimp compresses values with the Chimp XOR scheme [62], which improves on
// Gorilla for series without many repeating values: a 2-bit flag selects
// between identical value (00), a trailing-zero-rich encoding that stores
// only the center bits (01), and full-tail encodings that either reuse (10)
// or replace (11) the 3-bit leading-zero class.
func Chimp(xs []float64) *Encoded {
	w := NewBitWriter()
	var prev uint64
	prevLeading := -1
	for i, x := range xs {
		cur := math.Float64bits(x)
		if i == 0 {
			w.WriteBits(cur, 64)
			prev = cur
			prevLeading = -1
			continue
		}
		xor := prev ^ cur
		prev = cur
		if xor == 0 {
			w.WriteBits(0b00, 2)
			continue
		}
		leading := chimpLeadingRound[bits.LeadingZeros64(xor)]
		trailing := bits.TrailingZeros64(xor)
		if trailing > 6 {
			// Flag 01: worth storing only the center bits.
			w.WriteBits(0b01, 2)
			w.WriteBits(chimpLeadingRep[leading], 3)
			sig := 64 - leading - trailing
			w.WriteBits(uint64(sig), 6)
			w.WriteBits(xor>>uint(trailing), uint(sig))
			prevLeading = leading
		} else if leading == prevLeading {
			// Flag 10: reuse the previous leading class, store the tail.
			w.WriteBits(0b10, 2)
			w.WriteBits(xor, uint(64-leading))
		} else {
			// Flag 11: new leading class, store the tail.
			w.WriteBits(0b11, 2)
			w.WriteBits(chimpLeadingRep[leading], 3)
			w.WriteBits(xor, uint(64-leading))
			prevLeading = leading
		}
	}
	return &Encoded{Method: "chimp", N: len(xs), Bits: w.Bits(), Data: w.Bytes()}
}

// chimpDecode reverses Chimp.
func chimpDecode(data []byte, n int) ([]float64, error) {
	r := NewBitReader(data)
	// Cap the allocation hint: n comes from an untrusted header, and the
	// payload-exhaustion checks below should fire before 8*n bytes are
	// committed to a corrupt claim.
	out := make([]float64, 0, min(n, 1<<16))
	var prev uint64
	prevLeading := -1
	for i := 0; i < n; i++ {
		if i == 0 {
			v, err := r.ReadBits(64)
			if err != nil {
				return nil, err
			}
			prev = v
			out = append(out, math.Float64frombits(v))
			continue
		}
		flag, err := r.ReadBits(2)
		if err != nil {
			return nil, err
		}
		var xor uint64
		switch flag {
		case 0b00:
			// identical value
		case 0b01:
			code, err := r.ReadBits(3)
			if err != nil {
				return nil, err
			}
			leading := chimpLeadingValue[code]
			sig, err := r.ReadBits(6)
			if err != nil {
				return nil, err
			}
			trailing := 64 - leading - int(sig)
			v, err := r.ReadBits(uint(sig))
			if err != nil {
				return nil, err
			}
			xor = v << uint(trailing)
			prevLeading = leading
		case 0b10:
			v, err := r.ReadBits(uint(64 - prevLeading))
			if err != nil {
				return nil, err
			}
			xor = v
		default: // 0b11
			code, err := r.ReadBits(3)
			if err != nil {
				return nil, err
			}
			leading := chimpLeadingValue[code]
			v, err := r.ReadBits(uint(64 - leading))
			if err != nil {
				return nil, err
			}
			xor = v
			prevLeading = leading
		}
		prev ^= xor
		out = append(out, math.Float64frombits(prev))
	}
	return out, nil
}
