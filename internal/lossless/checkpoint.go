package lossless

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrBadCheckpoints is returned when a checkpoint sidecar fails validation
// against the block it claims to describe.
var ErrBadCheckpoints = errors.New("lossless: malformed checkpoint sidecar")

// maxCheckpointBit bounds any absolute bit offset a sidecar may claim, far
// above what a real block can produce (MaxBlockSamples * 64 bits plus slack)
// but low enough that offset arithmetic cannot overflow int.
const maxCheckpointBit = 1 << 40

// Checkpoint is one random-access mark into an XOR bit stream: the absolute
// bit offset of a sample boundary plus the complete decoder state at that
// point, so decoding can resume there without replaying the prefix.
//
// Mark j of a Checkpoints with interval k describes sample (j+1)*k: Bit is
// the offset of that sample's first bit, and Prev/Leading/Trailing are the
// XOR-chain state after decoding sample (j+1)*k - 1 (for Elf, the state of
// the stored — possibly mantissa-erased — value chain). Chimp has no
// trailing window; its marks carry Trailing == -1.
type Checkpoint struct {
	Bit      int
	Prev     uint64
	Leading  int8
	Trailing int8
}

// Checkpoints is the sidecar a checkpointed encoder emits alongside the bit
// stream: one mark every Interval samples (at samples k, 2k, ... < n).
type Checkpoints struct {
	Interval int
	Marks    []Checkpoint
}

// newCheckpoints returns an empty recorder for the given interval, or nil
// when checkpointing is disabled (interval <= 0).
func newCheckpoints(interval int) *Checkpoints {
	if interval <= 0 {
		return nil
	}
	return &Checkpoints{Interval: interval}
}

// mark records the state for decoding sample i if i sits on a checkpoint
// boundary. Safe to call on a nil recorder; encoders call it at the top of
// every iteration, before any of sample i's bits are written.
func (c *Checkpoints) mark(i, bit int, prev uint64, leading, trailing int) {
	if c == nil || i == 0 || i%c.Interval != 0 {
		return
	}
	c.Marks = append(c.Marks, Checkpoint{Bit: bit, Prev: prev, Leading: int8(leading), Trailing: int8(trailing)})
}

// finish returns the recorder, or nil when it holds no marks (blocks no
// larger than the interval gain nothing from a sidecar).
func (c *Checkpoints) finish() *Checkpoints {
	if c == nil || len(c.Marks) == 0 {
		return nil
	}
	return c
}

// AppendBinary serializes the sidecar: uvarint interval, uvarint mark count,
// then per mark a uvarint bit-offset delta, the 8-byte little-endian prev
// bits, and the leading/trailing counts biased by +1 into single bytes.
func (c *Checkpoints) AppendBinary(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(c.Interval))
	dst = binary.AppendUvarint(dst, uint64(len(c.Marks)))
	prevBit := 0
	for _, m := range c.Marks {
		dst = binary.AppendUvarint(dst, uint64(m.Bit-prevBit))
		prevBit = m.Bit
		dst = binary.LittleEndian.AppendUint64(dst, m.Prev)
		dst = append(dst, byte(m.Leading+1), byte(m.Trailing+1))
	}
	return dst
}

// ParseCheckpoints decodes and validates a sidecar against the sample count
// n of the block it accompanies. Validation is strict — the mark count must
// be exactly (n-1)/interval, offsets must strictly increase within bounds,
// state counts must fit a 64-bit word, and no trailing bytes may remain —
// so a hostile sidecar is rejected up front instead of steering the bit
// reader somewhere surprising.
func ParseCheckpoints(data []byte, n int) (*Checkpoints, error) {
	interval, k := binary.Uvarint(data)
	if k <= 0 || interval == 0 || interval > maxCheckpointBit {
		return nil, fmt.Errorf("%w: bad interval", ErrBadCheckpoints)
	}
	data = data[k:]
	count, k := binary.Uvarint(data)
	if k <= 0 {
		return nil, fmt.Errorf("%w: bad mark count", ErrBadCheckpoints)
	}
	data = data[k:]
	if n < 0 || uint64(count) != uint64((n-1)/int(interval)) {
		return nil, fmt.Errorf("%w: %d marks for n=%d, interval=%d", ErrBadCheckpoints, count, n, interval)
	}
	// Each mark occupies at least 11 sidecar bytes; cap the allocation hint
	// accordingly so a hostile count cannot commit memory up front.
	ck := &Checkpoints{Interval: int(interval), Marks: make([]Checkpoint, 0, min(int(count), len(data)/11))}
	bit := 0
	for j := uint64(0); j < count; j++ {
		delta, k := binary.Uvarint(data)
		if k <= 0 || delta == 0 || delta > maxCheckpointBit {
			return nil, fmt.Errorf("%w: bad bit delta", ErrBadCheckpoints)
		}
		data = data[k:]
		if len(data) < 10 {
			return nil, fmt.Errorf("%w: truncated mark", ErrBadCheckpoints)
		}
		bit += int(delta)
		if bit > maxCheckpointBit {
			return nil, fmt.Errorf("%w: bit offset out of range", ErrBadCheckpoints)
		}
		prev := binary.LittleEndian.Uint64(data)
		lead, trail := data[8], data[9]
		data = data[10:]
		if lead > 65 || trail > 65 {
			return nil, fmt.Errorf("%w: state count out of range", ErrBadCheckpoints)
		}
		ck.Marks = append(ck.Marks, Checkpoint{Bit: bit, Prev: prev, Leading: int8(int(lead) - 1), Trailing: int8(int(trail) - 1)})
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadCheckpoints, len(data))
	}
	return ck, nil
}

// xorState is the complete resumable decoder state shared by the XOR-family
// codecs: the previous stored value's bits and the current leading/trailing
// significant-bit window (-1 = no window yet; Chimp ignores trailing).
type xorState struct {
	prev     uint64
	leading  int
	trailing int
}

func freshXORState() xorState { return xorState{leading: -1, trailing: -1} }

func (c *Checkpoint) state() xorState {
	return xorState{prev: c.Prev, leading: int(c.Leading), trailing: int(c.Trailing)}
}

// DecompressRange decodes samples [lo, hi) of an n-sample stream, seeking
// via the sidecar to the last checkpoint at or before lo and replaying only
// the (lo - checkpoint) prefix before emitting — O(overlap + interval)
// work instead of O(n). A nil ck degrades to a front-to-lo replay. The
// return value is the number of stream bits traversed (seek-adjusted), the
// currency of the O(overlap + k) cost contract.
func DecompressRange(method string, data []byte, n int, ck *Checkpoints, lo, hi int, emit func(float64)) (int, error) {
	if lo < 0 || hi < lo || hi > n {
		return 0, fmt.Errorf("lossless: range [%d, %d) out of [0, %d)", lo, hi, n)
	}
	start := 0
	st := freshXORState()
	r := NewBitReader(data)
	if ck != nil && ck.Interval > 0 && len(ck.Marks) > 0 {
		if m := min(lo/ck.Interval-1, len(ck.Marks)-1); m >= 0 {
			start = (m + 1) * ck.Interval
			st = ck.Marks[m].state()
			r = NewBitReaderAt(data, ck.Marks[m].Bit)
		}
	}
	startBit := r.BitPos()
	idx := start
	cb := func(v float64) {
		if idx >= lo {
			emit(v)
		}
		idx++
	}
	var err error
	switch method {
	case "gorilla":
		err = gorillaDecodeFrom(r, &st, start, hi, cb)
	case "chimp":
		err = chimpDecodeFrom(r, &st, start, hi, cb)
	case "elf":
		err = elfDecodeFrom(r, &st, start, hi, cb)
	default:
		return 0, fmt.Errorf("lossless: unknown method %q", method)
	}
	if err != nil {
		return 0, err
	}
	return r.BitPos() - startBit, nil
}
