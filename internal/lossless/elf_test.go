package lossless

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestElfRoundtripSimple(t *testing.T) {
	xs := []float64{1.5, 1.5, 20.25, -3.12, 0.001, 98.6, 0, 1e10, math.Pi}
	enc := Elf(xs)
	dec, err := enc.Decompress()
	if err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		if math.Float64bits(dec[i]) != math.Float64bits(xs[i]) {
			t.Fatalf("value %d: %v != %v", i, dec[i], xs[i])
		}
	}
}

func TestElfRoundtripSpecials(t *testing.T) {
	xs := []float64{math.NaN(), math.Inf(1), math.Inf(-1), 0, math.Copysign(0, -1), 5e-324, math.MaxFloat64}
	dec, err := Elf(xs).Decompress()
	if err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		if math.Float64bits(dec[i]) != math.Float64bits(xs[i]) {
			t.Fatalf("special %d: %x != %x", i, math.Float64bits(dec[i]), math.Float64bits(xs[i]))
		}
	}
}

func TestElfBeatsGorillaOnDecimalData(t *testing.T) {
	// Two-decimal sensor readings: the erase step should leave long
	// trailing-zero runs and clearly beat both Gorilla and Chimp.
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 3000)
	v := 50.0
	for i := range xs {
		v += rng.NormFloat64()
		xs[i] = math.Round(v*100) / 100
	}
	e := Elf(xs).BitsPerValue()
	g := Gorilla(xs).BitsPerValue()
	c := Chimp(xs).BitsPerValue()
	if e >= g || e >= c {
		t.Fatalf("Elf %v bits/v should beat Gorilla %v and Chimp %v on decimal data", e, g, c)
	}
}

func TestElfOverheadBoundedOnRandomBits(t *testing.T) {
	// High-entropy mantissas cannot be erased; Elf must gracefully fall
	// back to ~Gorilla plus one flag bit per value.
	rng := rand.New(rand.NewSource(2))
	xs := make([]float64, 2000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	e := Elf(xs).BitsPerValue()
	g := Gorilla(xs).BitsPerValue()
	if e > g+2 {
		t.Fatalf("Elf %v bits/v overhead vs Gorilla %v too large", e, g)
	}
	dec, err := Elf(xs).Decompress()
	if err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		if dec[i] != xs[i] {
			t.Fatalf("random-bits roundtrip broken at %d", i)
		}
	}
}

func TestElfDecodeGarbage(t *testing.T) {
	if _, err := (&Encoded{Method: "elf", N: 5, Data: []byte{0xFF}}).Decompress(); err == nil {
		t.Fatal("expected error for truncated elf stream")
	}
}

func TestDecimalSignificand(t *testing.T) {
	cases := map[string]int{
		"1.5":     2,
		"0.00123": 3,
		"100":     3,
		"9":       1,
		"1.25e-7": 3,
		"-42.5":   3,
	}
	for s, want := range cases {
		if got := decimalSignificand(s); got != want {
			t.Errorf("decimalSignificand(%q) = %d, want %d", s, got, want)
		}
	}
}

// Property: Elf roundtrips arbitrary bit patterns exactly (the verified
// erase guarantees unconditional losslessness).
func TestElfRoundtripProperty(t *testing.T) {
	f := func(raw []uint64) bool {
		xs := make([]float64, len(raw))
		for i, u := range raw {
			xs[i] = math.Float64frombits(u)
		}
		dec, err := Elf(xs).Decompress()
		if err != nil || len(dec) != len(xs) {
			return false
		}
		for i := range xs {
			if math.Float64bits(dec[i]) != math.Float64bits(xs[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: on rounded-decimal random walks Elf stays lossless and at or
// below Gorilla's size.
func TestElfDecimalWalkProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 50 + rng.Intn(500)
		prec := math.Pow(10, float64(1+rng.Intn(3)))
		xs := make([]float64, n)
		v := rng.NormFloat64() * 10
		for i := range xs {
			v += rng.NormFloat64()
			xs[i] = math.Round(v*prec) / prec
		}
		enc := Elf(xs)
		dec, err := enc.Decompress()
		if err != nil {
			return false
		}
		for i := range xs {
			if dec[i] != xs[i] {
				return false
			}
		}
		return enc.BitsPerValue() <= Gorilla(xs).BitsPerValue()+2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
