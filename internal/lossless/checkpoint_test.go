package lossless

import (
	"math"
	"math/rand"
	"testing"
)

// methods drives the per-codec subtests below over the whole XOR family.
var methods = []struct {
	name   string
	plain  func([]float64) *Encoded
	ckpted func([]float64, int) (*Encoded, *Checkpoints)
}{
	{"gorilla", Gorilla, GorillaCheckpointed},
	{"chimp", Chimp, ChimpCheckpointed},
	{"elf", Elf, ElfCheckpointed},
}

// hostileSeries are the float patterns most likely to break decoder-state
// checkpointing: NaN payloads, infinities, signed zeros, denormals, and
// constant runs (whose 1-bit repeats give the XOR state nothing to resync
// on).
func hostileSeries() [][]float64 {
	denormal := math.Float64frombits(1)
	constant := make([]float64, 400)
	for i := range constant {
		constant[i] = -7.125
	}
	mixed := make([]float64, 500)
	rng := rand.New(rand.NewSource(7))
	v := 20.0
	for i := range mixed {
		switch i % 97 {
		case 13:
			mixed[i] = math.NaN()
		case 29:
			mixed[i] = math.Inf(1)
		case 31:
			mixed[i] = math.Inf(-1)
		case 47:
			mixed[i] = denormal
		case 53:
			mixed[i] = math.Copysign(0, -1)
		default:
			v += math.Round(rng.NormFloat64()*4) / 4
			mixed[i] = v
		}
	}
	walk := make([]float64, 777)
	w := 0.0
	for i := range walk {
		w += rng.NormFloat64()
		walk[i] = w
	}
	return [][]float64{
		nil,
		{1.5},
		{math.NaN(), math.NaN(), math.NaN()},
		constant,
		mixed,
		walk,
	}
}

// TestCheckpointedBitStreamUnchanged pins the compatibility contract: the
// checkpoint interval only adds or removes the sidecar, never a single bit
// of the compressed stream.
func TestCheckpointedBitStreamUnchanged(t *testing.T) {
	for _, m := range methods {
		for _, xs := range hostileSeries() {
			plain := m.plain(xs)
			for _, k := range []int{0, 1, 7, 64, 1000} {
				enc, ck := m.ckpted(xs, k)
				if enc.Bits != plain.Bits || string(enc.Data) != string(plain.Data) {
					t.Fatalf("%s: interval %d changed the bit stream", m.name, k)
				}
				if k <= 0 || len(xs) <= k {
					if ck != nil {
						t.Fatalf("%s: interval %d over %d samples emitted %d marks", m.name, k, len(xs), len(ck.Marks))
					}
				} else if want := (len(xs) - 1) / k; ck == nil || len(ck.Marks) != want {
					t.Fatalf("%s: interval %d over %d samples: marks %v, want %d", m.name, k, len(xs), ck, want)
				}
			}
		}
	}
}

// TestCheckpointsBinaryRoundTrip round-trips the sidecar serialization and
// rejects trailing garbage and truncation.
func TestCheckpointsBinaryRoundTrip(t *testing.T) {
	xs := hostileSeries()[4]
	for _, m := range methods {
		_, ck := m.ckpted(xs, 32)
		if ck == nil {
			t.Fatalf("%s: no checkpoints for %d samples at interval 32", m.name, len(xs))
		}
		bin := ck.AppendBinary(nil)
		got, err := ParseCheckpoints(bin, len(xs))
		if err != nil {
			t.Fatalf("%s: %v", m.name, err)
		}
		if got.Interval != ck.Interval || len(got.Marks) != len(ck.Marks) {
			t.Fatalf("%s: parsed %+v, want %+v", m.name, got, ck)
		}
		for i := range ck.Marks {
			if got.Marks[i] != ck.Marks[i] {
				t.Fatalf("%s: mark %d: %+v != %+v", m.name, i, got.Marks[i], ck.Marks[i])
			}
		}
		if _, err := ParseCheckpoints(append(bin, 0), len(xs)); err == nil {
			t.Fatalf("%s: trailing byte accepted", m.name)
		}
		if _, err := ParseCheckpoints(bin[:len(bin)-1], len(xs)); err == nil {
			t.Fatalf("%s: truncated sidecar accepted", m.name)
		}
		if _, err := ParseCheckpoints(bin, len(xs)+32); err == nil {
			t.Fatalf("%s: mark-count mismatch accepted", m.name)
		}
	}
}

// TestDecompressRangeMatchesFullDecode is the core differential: every
// (lo, hi) window decoded through the checkpoints must be bit-identical to
// full-decode-then-slice, for every codec and every hostile series.
func TestDecompressRangeMatchesFullDecode(t *testing.T) {
	for _, m := range methods {
		for _, xs := range hostileSeries() {
			want, err := m.plain(xs).Decompress()
			if err != nil {
				t.Fatal(err)
			}
			for _, k := range []int{1, 16, 128} {
				enc, ck := m.ckpted(xs, k)
				n := len(xs)
				for _, r := range [][2]int{{0, n}, {0, min(1, n)}, {n / 3, 2 * n / 3}, {max(0, n-5), n}, {n / 2, n / 2}} {
					lo, hi := r[0], r[1]
					var got []float64
					if _, err := DecompressRange(enc.Method, enc.Data, n, ck, lo, hi, func(v float64) {
						got = append(got, v)
					}); err != nil {
						t.Fatalf("%s k=%d [%d,%d): %v", m.name, k, lo, hi, err)
					}
					if len(got) != hi-lo {
						t.Fatalf("%s k=%d [%d,%d): %d values", m.name, k, lo, hi, len(got))
					}
					for i, v := range got {
						if math.Float64bits(v) != math.Float64bits(want[lo+i]) {
							t.Fatalf("%s k=%d [%d,%d): value %d differs: %v != %v", m.name, k, lo, hi, lo+i, v, want[lo+i])
						}
					}
				}
			}
		}
	}
}

// TestDecompressRangeStreamBitsExact proves the O(overlap + k) bound
// arithmetically on a constant series, where Gorilla spends exactly 64
// bits on sample 0 and 1 bit on every repeat: a checkpointed read of
// [lo, hi) must traverse exactly hi - floor(lo/k)*k bits — the overlap
// plus at most one checkpoint interval of replay — while the same read
// without a sidecar replays the whole prefix.
func TestDecompressRangeStreamBitsExact(t *testing.T) {
	const n, k = 4096, 128
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = 42.5
	}
	enc, ck := GorillaCheckpointed(xs, k)
	lo, hi := 4000, 4032
	bits, err := DecompressRange("gorilla", enc.Data, n, ck, lo, hi, func(float64) {})
	if err != nil {
		t.Fatal(err)
	}
	start := lo / k * k // the checkpointed resume point
	if want := hi - start; bits != want {
		t.Fatalf("checkpointed read traversed %d bits, want exactly %d (overlap %d + replay %d)",
			bits, want, hi-lo, lo-start)
	}
	cold, err := DecompressRange("gorilla", enc.Data, n, nil, lo, hi, func(float64) {})
	if err != nil {
		t.Fatal(err)
	}
	if want := 64 + hi - 1; cold != want {
		t.Fatalf("sidecar-less read traversed %d bits, want the whole %d-bit prefix", cold, want)
	}
	if bits*10 > cold {
		t.Fatalf("checkpointing saved too little: %d vs %d bits", bits, cold)
	}
}

// TestDecompressRangeStreamBitsBounded proves the bound on realistic data
// for the whole family: the traversed bits of a late small window must not
// exceed the stream size of overlap + k samples at the series' worst
// per-sample cost (64 bits + per-codec control overhead < 80).
func TestDecompressRangeStreamBitsBounded(t *testing.T) {
	const n, k = 4096, 128
	rng := rand.New(rand.NewSource(11))
	xs := make([]float64, n)
	v := 0.0
	for i := range xs {
		v += rng.NormFloat64()
		xs[i] = v
	}
	for _, m := range methods {
		enc, ck := m.ckpted(xs, k)
		lo, hi := n-40, n-8
		bits, err := DecompressRange(enc.Method, enc.Data, n, ck, lo, hi, func(float64) {})
		if err != nil {
			t.Fatalf("%s: %v", m.name, err)
		}
		maxSamples := (hi - lo) + k // overlap plus at most one interval of replay
		if bound := maxSamples * 80; bits > bound {
			t.Fatalf("%s: traversed %d bits for %d+%d samples, above the %d-bit O(overlap+k) bound",
				m.name, bits, hi-lo, k, bound)
		}
		if bits >= enc.Bits/2 {
			t.Fatalf("%s: tail read traversed %d of %d stream bits — checkpoint seek not engaged", m.name, bits, enc.Bits)
		}
	}
}

// TestParseCheckpointsRejectsHostileSidecars drives the parser with
// corrupted images: absurd intervals, bit offsets, state bytes, and
// allocation-bomb mark counts must error, never panic or over-allocate.
func TestParseCheckpointsRejectsHostileSidecars(t *testing.T) {
	for _, bad := range [][]byte{
		{0},                                      // interval 0
		{200, 200, 200, 200, 200, 200, 1},        // giant interval varint
		{1, 255, 255, 255, 255, 1},               // mark-count bomb with no mark bytes
		{1, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0},  // zero bit delta
		{1, 1, 1, 0, 0, 0, 0, 0, 0, 0, 0, 99, 0}, // leading byte out of range
	} {
		if ck, err := ParseCheckpoints(bad, 1<<20); err == nil {
			t.Fatalf("accepted %v as %+v", bad, ck)
		}
	}
}

// FuzzCheckpointRangeDifferential fuzzes the tentpole invariant across all
// three codecs: any series (arbitrary bit patterns included), any
// interval, any window — the checkpointed range decode must match
// full-decode-then-slice bit-for-bit, and never read past O(overlap + k)
// samples' worth of stream.
func FuzzCheckpointRangeDifferential(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9}, uint8(1), uint16(0), uint16(3))
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}, uint8(2), uint16(1), uint16(2))
	f.Fuzz(func(t *testing.T, raw []byte, k uint8, lo16, hi16 uint16) {
		if len(raw) > 8*512 {
			raw = raw[:8*512]
		}
		xs := make([]float64, len(raw)/8)
		for i := range xs {
			var u uint64
			for j := 0; j < 8; j++ {
				u = u<<8 | uint64(raw[i*8+j])
			}
			xs[i] = math.Float64frombits(u)
		}
		n := len(xs)
		lo, hi := int(lo16)%(n+1), int(hi16)%(n+1)
		if lo > hi {
			lo, hi = hi, lo
		}
		interval := int(k)
		for _, m := range methods {
			want, err := m.plain(xs).Decompress()
			if err != nil {
				t.Fatalf("%s: encode/decode failed: %v", m.name, err)
			}
			enc, ck := m.ckpted(xs, interval)
			var got []float64
			if _, err := DecompressRange(enc.Method, enc.Data, n, ck, lo, hi, func(v float64) {
				got = append(got, v)
			}); err != nil {
				t.Fatalf("%s k=%d [%d,%d): %v", m.name, interval, lo, hi, err)
			}
			if len(got) != hi-lo {
				t.Fatalf("%s: %d values for [%d,%d)", m.name, len(got), lo, hi)
			}
			for i, v := range got {
				if math.Float64bits(v) != math.Float64bits(want[lo+i]) {
					t.Fatalf("%s k=%d: sample %d: %x != %x", m.name, interval, lo+i, math.Float64bits(v), math.Float64bits(want[lo+i]))
				}
			}
		}
	})
}

// FuzzParseCheckpoints hammers the sidecar parser with arbitrary bytes: it
// must reject or parse, never panic, and an accepted sidecar must seek
// without corrupting a valid stream's range decode (errors are fine — the
// state may be nonsense — but silent wrong values are not checkable here,
// so this fuzzer only pins memory safety and error discipline).
func FuzzParseCheckpoints(f *testing.F) {
	_, ck := GorillaCheckpointed(hostileSeries()[5], 64)
	f.Add(ck.AppendBinary(nil), 777)
	f.Add([]byte{1, 1, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}, 2)
	f.Fuzz(func(t *testing.T, data []byte, n int) {
		if n < 0 || n > 1<<20 {
			return
		}
		ck, err := ParseCheckpoints(data, n)
		if err != nil {
			return
		}
		if ck == nil || ck.Interval < 1 {
			t.Fatalf("accepted sidecar parsed to %+v", ck)
		}
		if len(ck.Marks) != (n-1)/ck.Interval {
			t.Fatalf("accepted %d marks for n=%d interval=%d", len(ck.Marks), n, ck.Interval)
		}
	})
}
