package lossless

import (
	"math"
	"math/bits"
	"strconv"
)

// Elf implements an erase-based lossless codec in the spirit of Elf [61]
// (paper §6): values that are short decimals (e.g. sensor readings rounded
// to a few digits) carry far fewer meaningful mantissa bits than float64
// provides. The encoder erases (zeroes) trailing mantissa bits — creating
// long trailing-zero runs that the XOR chain compresses well — and stores
// the decimal significand count alpha so the decoder can restore the exact
// original by decimal rounding. Every erase is verified at encode time;
// values that cannot be restored exactly (high-entropy doubles, NaN, Inf)
// are stored unerased, so the codec is unconditionally lossless.
//
// Per-value layout: flag bit (1 = erased, followed by 5 bits alpha-1),
// then the Gorilla XOR coding of the (possibly erased) value against the
// previous stored value.
func Elf(xs []float64) *Encoded {
	e, _ := ElfCheckpointed(xs, 0)
	return e
}

// ElfCheckpointed is Elf plus a checkpoint sidecar (see
// GorillaCheckpointed). Marks capture the stored-value XOR chain — the
// state before decimal restoration — since that is what the bit reader
// resumes. The bit stream is identical to Elf's regardless of interval.
func ElfCheckpointed(xs []float64, interval int) (*Encoded, *Checkpoints) {
	ck := newCheckpoints(interval)
	w := NewBitWriter()
	var prev uint64
	prevLeading, prevTrailing := -1, -1
	for i, x := range xs {
		ck.mark(i, w.Bits(), prev, prevLeading, prevTrailing)
		stored, alpha, erased := elfErase(x)
		if erased {
			w.WriteBit(1)
			w.WriteBits(uint64(alpha-1), 5)
		} else {
			w.WriteBit(0)
		}
		cur := math.Float64bits(stored)
		if i == 0 {
			w.WriteBits(cur, 64)
			prev = cur
			continue
		}
		xor := prev ^ cur
		prev = cur
		if xor == 0 {
			w.WriteBit(0)
			continue
		}
		w.WriteBit(1)
		leading := bits.LeadingZeros64(xor)
		trailing := bits.TrailingZeros64(xor)
		if leading > 31 {
			leading = 31
		}
		if prevLeading >= 0 && leading >= prevLeading && trailing >= prevTrailing {
			w.WriteBit(0)
			sig := 64 - prevLeading - prevTrailing
			w.WriteBits(xor>>uint(prevTrailing), uint(sig))
		} else {
			w.WriteBit(1)
			sig := 64 - leading - trailing
			w.WriteBits(uint64(leading), 5)
			w.WriteBits(uint64(sig-1), 6)
			w.WriteBits(xor>>uint(trailing), uint(sig))
			prevLeading, prevTrailing = leading, trailing
		}
	}
	return &Encoded{Method: "elf", N: len(xs), Bits: w.Bits(), Data: w.Bytes()}, ck.finish()
}

// elfDecode reverses Elf.
func elfDecode(data []byte, n int) ([]float64, error) {
	r := NewBitReader(data)
	// Cap the allocation hint: n comes from an untrusted header, and the
	// payload-exhaustion checks in the stepper should fire before 8*n bytes
	// are committed to a corrupt claim.
	out := make([]float64, 0, min(n, 1<<16))
	st := freshXORState()
	if err := elfDecodeFrom(r, &st, 0, n, func(v float64) { out = append(out, v) }); err != nil {
		return nil, err
	}
	return out, nil
}

// elfDecodeFrom decodes samples [start, hi) of an Elf stream, with r
// positioned at sample start's flag bit and st holding the stored-value XOR
// chain state after sample start-1 (fresh state when start is 0).
func elfDecodeFrom(r *BitReader, st *xorState, start, hi int, emit func(float64)) error {
	for i := start; i < hi; i++ {
		flag, err := r.ReadBit()
		if err != nil {
			return err
		}
		alpha := 0
		if flag == 1 {
			a, err := r.ReadBits(5)
			if err != nil {
				return err
			}
			alpha = int(a) + 1
		}
		var cur uint64
		if i == 0 {
			cur, err = r.ReadBits(64)
			if err != nil {
				return err
			}
		} else {
			b, err := r.ReadBit()
			if err != nil {
				return err
			}
			if b == 0 {
				cur = st.prev
			} else {
				ctl, err := r.ReadBit()
				if err != nil {
					return err
				}
				var xor uint64
				if ctl == 0 {
					if st.leading < 0 {
						return ErrShortStream
					}
					sig := 64 - st.leading - st.trailing
					v, err := r.ReadBits(uint(sig))
					if err != nil {
						return err
					}
					xor = v << uint(st.trailing)
				} else {
					lead, err := r.ReadBits(5)
					if err != nil {
						return err
					}
					sigM1, err := r.ReadBits(6)
					if err != nil {
						return err
					}
					sig := int(sigM1) + 1
					trail := 64 - int(lead) - sig
					if trail < 0 {
						return ErrShortStream
					}
					v, err := r.ReadBits(uint(sig))
					if err != nil {
						return err
					}
					xor = v << uint(trail)
					st.leading, st.trailing = int(lead), trail
				}
				cur = st.prev ^ xor
			}
		}
		st.prev = cur
		v := math.Float64frombits(cur)
		if flag == 1 {
			v = elfRestore(v, alpha)
		}
		emit(v)
	}
	return nil
}

// elfErase finds the most trailing mantissa bits of x that can be zeroed
// while decimal rounding to alpha significant digits still restores x
// exactly. Returns the erased value, alpha, and whether erasing succeeded
// (with at least 12 bits gained — below that the 6-bit flag overhead and
// the disruption of the XOR chain outweigh the trailing-zero savings).
func elfErase(x float64) (stored float64, alpha int, erased bool) {
	if math.IsNaN(x) || math.IsInf(x, 0) || x == 0 {
		return x, 0, false
	}
	short := strconv.FormatFloat(x, 'g', -1, 64)
	alpha = decimalSignificand(short)
	if alpha <= 0 || alpha > 17 {
		return x, 0, false
	}
	bitsV := math.Float64bits(x)
	// Binary-search the largest erase count that still restores, then
	// verify (the restore predicate is monotone in practice; the final
	// verification keeps the codec unconditionally lossless regardless).
	lo, hi := 0, 52
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if elfRestorable(bitsV, mid, alpha, x) {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	for lo > 0 && !elfRestorable(bitsV, lo, alpha, x) {
		lo--
	}
	if lo < 12 {
		return x, 0, false
	}
	mask := ^uint64(0) << uint(lo)
	return math.Float64frombits(bitsV & mask), alpha, true
}

// elfRestorable checks that zeroing k trailing mantissa bits still decimal-
// rounds back to the original.
func elfRestorable(bitsV uint64, k, alpha int, orig float64) bool {
	mask := ^uint64(0) << uint(k)
	v := math.Float64frombits(bitsV & mask)
	return elfRestore(v, alpha) == orig
}

// elfRestore rounds v to alpha significant decimal digits.
func elfRestore(v float64, alpha int) float64 {
	s := strconv.FormatFloat(v, 'g', alpha, 64)
	out, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return v
	}
	return out
}

// decimalSignificand counts the significant digits of a shortest-form
// decimal string (as produced by strconv with precision -1).
func decimalSignificand(s string) int {
	digits := 0
	seenNonZero := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= '1' && c <= '9':
			seenNonZero = true
			digits++
		case c == '0':
			if seenNonZero {
				digits++
			}
		case c == 'e' || c == 'E':
			return digits
		case c == '.', c == '-', c == '+':
			// skip
		default:
			return -1 // NaN/Inf spellings
		}
	}
	return digits
}
