package lossless

import (
	"math"
	"math/bits"
)

// Gorilla compresses values with Facebook Gorilla's XOR scheme [76]:
// the first value is stored raw; each subsequent value XORs with its
// predecessor and stores either nothing (identical), the meaningful bits
// inside the previous leading/trailing-zero window ('10'), or a new window
// ('11' + 5-bit leading count + 6-bit length + bits).
func Gorilla(xs []float64) *Encoded {
	e, _ := GorillaCheckpointed(xs, 0)
	return e
}

// GorillaCheckpointed is Gorilla plus a checkpoint sidecar: every interval
// samples it records the bit offset and decoder state so DecompressRange
// can seek instead of replaying the stream. interval <= 0 disables
// checkpointing; the returned sidecar is nil when it would hold no marks.
// The bit stream is identical to Gorilla's regardless of interval.
func GorillaCheckpointed(xs []float64, interval int) (*Encoded, *Checkpoints) {
	ck := newCheckpoints(interval)
	w := NewBitWriter()
	var prev uint64
	prevLeading, prevTrailing := -1, -1 // -1: no valid window yet
	for i, x := range xs {
		ck.mark(i, w.Bits(), prev, prevLeading, prevTrailing)
		cur := math.Float64bits(x)
		if i == 0 {
			w.WriteBits(cur, 64)
			prev = cur
			continue
		}
		xor := prev ^ cur
		prev = cur
		if xor == 0 {
			w.WriteBit(0)
			continue
		}
		w.WriteBit(1)
		leading := bits.LeadingZeros64(xor)
		trailing := bits.TrailingZeros64(xor)
		if leading > 31 {
			leading = 31 // the 5-bit field caps the stored leading count
		}
		if prevLeading >= 0 && leading >= prevLeading && trailing >= prevTrailing {
			// Fits the previous window: control '0', then the window bits.
			w.WriteBit(0)
			sig := 64 - prevLeading - prevTrailing
			w.WriteBits(xor>>uint(prevTrailing), uint(sig))
		} else {
			// New window: control '1', 5-bit leading, 6-bit (length-1), bits.
			w.WriteBit(1)
			sig := 64 - leading - trailing
			w.WriteBits(uint64(leading), 5)
			w.WriteBits(uint64(sig-1), 6)
			w.WriteBits(xor>>uint(trailing), uint(sig))
			prevLeading, prevTrailing = leading, trailing
		}
	}
	return &Encoded{Method: "gorilla", N: len(xs), Bits: w.Bits(), Data: w.Bytes()}, ck.finish()
}

// gorillaDecode reverses Gorilla.
func gorillaDecode(data []byte, n int) ([]float64, error) {
	r := NewBitReader(data)
	// Cap the allocation hint: n comes from an untrusted header, and the
	// payload-exhaustion checks in the stepper should fire before 8*n bytes
	// are committed to a corrupt claim.
	out := make([]float64, 0, min(n, 1<<16))
	st := freshXORState()
	if err := gorillaDecodeFrom(r, &st, 0, n, func(v float64) { out = append(out, v) }); err != nil {
		return nil, err
	}
	return out, nil
}

// gorillaDecodeFrom decodes samples [start, hi) of a Gorilla stream, with r
// positioned at sample start's first bit and st holding the decoder state
// after sample start-1 (fresh state when start is 0). Corrupt state — e.g.
// from a hostile sidecar — fails ReadBits' width check rather than
// panicking.
func gorillaDecodeFrom(r *BitReader, st *xorState, start, hi int, emit func(float64)) error {
	for i := start; i < hi; i++ {
		if i == 0 {
			v, err := r.ReadBits(64)
			if err != nil {
				return err
			}
			st.prev = v
			emit(math.Float64frombits(v))
			continue
		}
		b, err := r.ReadBit()
		if err != nil {
			return err
		}
		if b == 0 {
			emit(math.Float64frombits(st.prev))
			continue
		}
		ctl, err := r.ReadBit()
		if err != nil {
			return err
		}
		var xor uint64
		if ctl == 0 {
			sig := 64 - st.leading - st.trailing
			v, err := r.ReadBits(uint(sig))
			if err != nil {
				return err
			}
			xor = v << uint(st.trailing)
		} else {
			lead, err := r.ReadBits(5)
			if err != nil {
				return err
			}
			sigM1, err := r.ReadBits(6)
			if err != nil {
				return err
			}
			sig := int(sigM1) + 1
			trail := 64 - int(lead) - sig
			v, err := r.ReadBits(uint(sig))
			if err != nil {
				return err
			}
			xor = v << uint(trail)
			st.leading, st.trailing = int(lead), trail
		}
		st.prev ^= xor
		emit(math.Float64frombits(st.prev))
	}
	return nil
}
