package lossless

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBitWriterReaderRoundtrip(t *testing.T) {
	w := NewBitWriter()
	w.WriteBit(1)
	w.WriteBits(0b1011, 4)
	w.WriteBits(0xDEADBEEF, 32)
	w.WriteBits(0x3FF, 10)
	r := NewBitReader(w.Bytes())
	if b, _ := r.ReadBit(); b != 1 {
		t.Fatal("bit 1 mismatch")
	}
	if v, _ := r.ReadBits(4); v != 0b1011 {
		t.Fatalf("4-bit value = %b", v)
	}
	if v, _ := r.ReadBits(32); v != 0xDEADBEEF {
		t.Fatalf("32-bit value = %x", v)
	}
	if v, _ := r.ReadBits(10); v != 0x3FF {
		t.Fatalf("10-bit value = %x", v)
	}
}

func TestBitWriterBitsCount(t *testing.T) {
	w := NewBitWriter()
	w.WriteBits(0, 7)
	if w.Bits() != 7 {
		t.Fatalf("Bits = %d, want 7", w.Bits())
	}
	if len(w.Bytes()) != 1 {
		t.Fatalf("Bytes len = %d, want 1 (padded)", len(w.Bytes()))
	}
}

func TestBitReaderExhaustion(t *testing.T) {
	r := NewBitReader([]byte{0xFF})
	if _, err := r.ReadBits(8); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadBit(); err != ErrShortStream {
		t.Fatalf("expected ErrShortStream, got %v", err)
	}
	if _, err := r.ReadBits(65); err == nil {
		t.Fatal("expected error for >64-bit read")
	}
}

func TestGorillaRoundtripSimple(t *testing.T) {
	xs := []float64{1.0, 1.0, 2.5, 2.5, 2.5, -3.75, 0.0, 1e-300, 1e300, math.Pi}
	enc := Gorilla(xs)
	dec, err := enc.Decompress()
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != len(xs) {
		t.Fatalf("len = %d", len(dec))
	}
	for i := range xs {
		if xs[i] != dec[i] {
			t.Fatalf("value %d: %v != %v", i, dec[i], xs[i])
		}
	}
}

func TestGorillaIdenticalValuesOneBitEach(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = 42.5
	}
	enc := Gorilla(xs)
	// 64 bits for the first + 1 bit for each of the 99 repeats.
	if enc.Bits != 64+99 {
		t.Fatalf("Bits = %d, want %d", enc.Bits, 64+99)
	}
	if bpv := enc.BitsPerValue(); bpv > 2 {
		t.Fatalf("Bits/value = %v, want < 2 for constant series", bpv)
	}
}

func TestChimpRoundtripSimple(t *testing.T) {
	xs := []float64{1.0, 1.0, 2.5, -2.5, 1e-10, 7.25, 7.25, math.E, -0.0, 55.1}
	enc := Chimp(xs)
	dec, err := enc.Decompress()
	if err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		if math.Float64bits(xs[i]) != math.Float64bits(dec[i]) {
			t.Fatalf("value %d: %v != %v", i, dec[i], xs[i])
		}
	}
}

func TestChimpConstantSeriesTwoBitsEach(t *testing.T) {
	xs := make([]float64, 50)
	for i := range xs {
		xs[i] = -7.125
	}
	enc := Chimp(xs)
	if enc.Bits != 64+49*2 {
		t.Fatalf("Bits = %d, want %d", enc.Bits, 64+49*2)
	}
}

func TestEncodedUnknownMethod(t *testing.T) {
	e := &Encoded{Method: "nope", N: 1}
	if _, err := e.Decompress(); err == nil {
		t.Fatal("expected error for unknown method")
	}
}

func TestEmptySeriesBothCodecs(t *testing.T) {
	for _, enc := range []*Encoded{Gorilla(nil), Chimp(nil)} {
		dec, err := enc.Decompress()
		if err != nil {
			t.Fatal(err)
		}
		if len(dec) != 0 {
			t.Fatalf("decoded %d values from empty input", len(dec))
		}
		if enc.BitsPerValue() != 0 {
			t.Fatalf("BitsPerValue of empty = %v", enc.BitsPerValue())
		}
	}
}

func TestSingleValueBothCodecs(t *testing.T) {
	xs := []float64{math.Inf(1)}
	for _, enc := range []*Encoded{Gorilla(xs), Chimp(xs)} {
		dec, err := enc.Decompress()
		if err != nil {
			t.Fatal(err)
		}
		if len(dec) != 1 || !math.IsInf(dec[0], 1) {
			t.Fatalf("decoded %v", dec)
		}
	}
}

func TestCodecsOnNaN(t *testing.T) {
	xs := []float64{1.5, math.NaN(), 2.5}
	for _, enc := range []*Encoded{Gorilla(xs), Chimp(xs)} {
		dec, err := enc.Decompress()
		if err != nil {
			t.Fatal(err)
		}
		if !math.IsNaN(dec[1]) || dec[0] != 1.5 || dec[2] != 2.5 {
			t.Fatalf("NaN roundtrip broken: %v", dec)
		}
	}
}

func TestGorillaSlowlyVaryingBeatsRaw(t *testing.T) {
	// Slowly varying sensor-like values: XOR codecs should beat 64 bits/v.
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 2000)
	v := 20.0
	for i := range xs {
		// Round to limit mantissa churn, as typical sensor data does.
		v += math.Round(rng.NormFloat64()*4) / 4
		xs[i] = v
	}
	g := Gorilla(xs)
	c := Chimp(xs)
	if g.BitsPerValue() >= 64 {
		t.Fatalf("Gorilla Bits/v = %v, want < 64", g.BitsPerValue())
	}
	if c.BitsPerValue() >= 64 {
		t.Fatalf("Chimp Bits/v = %v, want < 64", c.BitsPerValue())
	}
}

// Property: both codecs roundtrip arbitrary bit patterns exactly.
func TestCodecRoundtripProperty(t *testing.T) {
	f := func(raw []uint64) bool {
		xs := make([]float64, len(raw))
		for i, u := range raw {
			xs[i] = math.Float64frombits(u)
		}
		for _, enc := range []*Encoded{Gorilla(xs), Chimp(xs)} {
			dec, err := enc.Decompress()
			if err != nil || len(dec) != len(xs) {
				return false
			}
			for i := range xs {
				if math.Float64bits(xs[i]) != math.Float64bits(dec[i]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: random-walk series (realistic sensor streams) roundtrip and
// compress to at most ~70 bits/value (sanity ceiling).
func TestCodecRandomWalkProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(500)
		xs := make([]float64, n)
		v := rng.NormFloat64() * 100
		for i := range xs {
			v += rng.NormFloat64()
			xs[i] = v
		}
		for _, enc := range []*Encoded{Gorilla(xs), Chimp(xs)} {
			dec, err := enc.Decompress()
			if err != nil {
				return false
			}
			for i := range xs {
				if xs[i] != dec[i] {
					return false
				}
			}
			if enc.BitsPerValue() > 72 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkGorillaCompress(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 10000)
	v := 0.0
	for i := range xs {
		v += rng.NormFloat64()
		xs[i] = v
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Gorilla(xs)
	}
}

func BenchmarkChimpCompress(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 10000)
	v := 0.0
	for i := range xs {
		v += rng.NormFloat64()
		xs[i] = v
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Chimp(xs)
	}
}
