package cameo

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"sync/atomic"
	"testing"

	"repro/internal/experiments"
)

// benchConfig keeps the per-artifact benchmarks small enough to run as a
// suite; use cmd/experiments -scale 1.0 for paper-sized runs.
func benchConfig() experiments.Config {
	return experiments.Config{Out: io.Discard, Scale: 0.02, MaxN: 2500, Seed: 1, Quick: true}
}

// benchArtifact runs one experiment runner b.N times.
func benchArtifact(b *testing.B, id string) {
	b.Helper()
	run := experiments.Registry()[id]
	if run == nil {
		b.Fatalf("unknown experiment %q", id)
	}
	cfg := benchConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// One benchmark per paper table.

func BenchmarkTable1DatasetSummary(b *testing.B)     { benchArtifact(b, "tab1") }
func BenchmarkTable2BitsPerValue(b *testing.B)       { benchArtifact(b, "tab2") }
func BenchmarkTable3CompressionTimes(b *testing.B)   { benchArtifact(b, "tab3") }
func BenchmarkTable4DecompressionTimes(b *testing.B) { benchArtifact(b, "tab4") }

// One benchmark per paper figure.

func BenchmarkFigure1FeatureCorrelation(b *testing.B)  { benchArtifact(b, "fig1") }
func BenchmarkFigure3ImportanceSkew(b *testing.B)      { benchArtifact(b, "fig3") }
func BenchmarkFigure6LineSimplification(b *testing.B)  { benchArtifact(b, "fig6") }
func BenchmarkFigure7LossyBaselines(b *testing.B)      { benchArtifact(b, "fig7") }
func BenchmarkFigure8NRMSEvsCR(b *testing.B)           { benchArtifact(b, "fig8") }
func BenchmarkFigure9Blocking(b *testing.B)            { benchArtifact(b, "fig9") }
func BenchmarkFigure10aFineGrained(b *testing.B)       { benchArtifact(b, "fig10a") }
func BenchmarkFigure10bCoarseGrained(b *testing.B)     { benchArtifact(b, "fig10b") }
func BenchmarkFigure11Hybrid(b *testing.B)             { benchArtifact(b, "fig11") }
func BenchmarkFigure12aMeasureVariants(b *testing.B)   { benchArtifact(b, "fig12a") }
func BenchmarkFigure12bForecastingModels(b *testing.B) { benchArtifact(b, "fig12b") }
func BenchmarkFigure12cHighlySeasonal(b *testing.B)    { benchArtifact(b, "fig12c") }
func BenchmarkFigure13Anomaly(b *testing.B)            { benchArtifact(b, "fig13") }

// Micro-benchmarks of the core operations (compression throughput, the
// numbers behind Tables 3-4).

func benchSeries(n, period int, noise float64) []float64 {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = 10 + 5*math.Sin(2*math.Pi*float64(i)/float64(period)) + noise*rng.NormFloat64()
	}
	return xs
}

func BenchmarkCompressEpsilon10k(b *testing.B) {
	xs := benchSeries(10000, 48, 0.5)
	opt := Options{Lags: 48, Epsilon: 0.01}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compress(xs, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompressRatio10k(b *testing.B) {
	xs := benchSeries(10000, 48, 0.5)
	opt := Options{Lags: 48, TargetRatio: 10}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compress(xs, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompressPACF2k(b *testing.B) {
	xs := benchSeries(2000, 24, 0.5)
	opt := Options{Lags: 24, Epsilon: 0.01, Statistic: StatPACF}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compress(xs, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompressAggregates10k(b *testing.B) {
	xs := benchSeries(10000, 240, 0.5)
	opt := Options{Lags: 10, Epsilon: 0.01, AggWindow: 24, AggFunc: AggMean}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compress(xs, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompressCoarse4x10k(b *testing.B) {
	xs := benchSeries(10000, 48, 0.5)
	opt := CoarseOptions{Options: Options{Lags: 48, Epsilon: 0.01}, Partitions: 4}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CompressCoarse(xs, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecompress100k(b *testing.B) {
	// Table 4's CAMEO row: linear-interpolation decompression at 10x. The
	// retained set is built directly (uniform 10x downsample) so the bench
	// isolates decompression.
	xs := benchSeries(100000, 480, 0.5)
	pts := make([]Point, 0, len(xs)/10+1)
	for i := 0; i < len(xs); i += 10 {
		pts = append(pts, Point{Index: i, Value: xs[i]})
	}
	if pts[len(pts)-1].Index != len(xs)-1 {
		pts = append(pts, Point{Index: len(xs) - 1, Value: xs[len(xs)-1]})
	}
	ir := &Irregular{N: len(xs), Points: pts}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ir.Decompress()
	}
}

func BenchmarkInitialImpacts10k(b *testing.B) {
	xs := benchSeries(10000, 48, 0.5)
	opt := Options{Lags: 48, Epsilon: 0.01}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := InitialImpacts(xs, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkACF10kx48(b *testing.B) {
	xs := benchSeries(10000, 48, 0.5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ACF(xs, 48)
	}
}

// Ablation benchmarks for the design choices DESIGN.md calls out.

// BenchmarkAblationRevalidation measures the cost of the lazy
// pop-revalidation step (exactness of the greedy order under blocking).
func BenchmarkAblationRevalidation(b *testing.B) {
	xs := benchSeries(5000, 48, 0.5)
	for _, noReval := range []bool{false, true} {
		name := "revalidate"
		if noReval {
			name = "no-revalidate"
		}
		b.Run(name, func(b *testing.B) {
			opt := Options{Lags: 48, Epsilon: 0.01, NoRevalidate: noReval}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Compress(xs, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationLagSubset measures the §5.5 "preserve specific lags"
// speedup: 3 seasonal lags vs the full 48-lag constraint.
func BenchmarkAblationLagSubset(b *testing.B) {
	xs := benchSeries(5000, 48, 0.5)
	for _, sub := range []struct {
		name string
		lags []int
	}{
		{"full-48", nil},
		{"subset-3", []int{1, 24, 48}},
	} {
		b.Run(sub.name, func(b *testing.B) {
			opt := Options{Lags: 48, Epsilon: 0.01, LagSubset: sub.lags}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Compress(xs, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Store engine benchmarks: multi-series ingest and range-query throughput
// for the sharded/async engine against the single-shard synchronous
// configuration (shards=1, no async workers — the pre-sharding design).

func storeBenchOptions(shards, workers, cacheBlocks int) StoreOptions {
	return StoreOptions{
		Compression: Options{Lags: 24, Epsilon: 0.05},
		BlockSize:   2048,
		Shards:      shards,
		Workers:     workers,
		CacheBlocks: cacheBlocks,
	}
}

// BenchmarkStoreAppend ingests 512-sample chunks from parallel appenders,
// each owning its own series; one iteration is one chunk, and the final
// Sync is timed so both configurations account for the full compression
// cost. On multi-core hardware sharded-async sustains materially higher
// throughput than single-shard-sync (which serializes every compression
// under one lock); with GOMAXPROCS=1 the two converge, as ingest is bound
// by the single CPU doing the compression either way.
func BenchmarkStoreAppend(b *testing.B) {
	chunk := benchSeries(512, 48, 0.5)
	for _, cfg := range []struct {
		name            string
		shards, workers int
	}{
		{"sharded-async", 16, 0},
		{"single-shard-sync", 1, -1},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			store, err := OpenStoreOptions(b.TempDir(), storeBenchOptions(cfg.shards, cfg.workers, -1))
			if err != nil {
				b.Fatal(err)
			}
			var id atomic.Int64
			b.SetBytes(int64(len(chunk) * 8))
			b.ReportAllocs()
			b.SetParallelism(8) // 8 client goroutines per GOMAXPROCS
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				name := fmt.Sprintf("series-%02d", id.Add(1))
				for pb.Next() {
					if err := store.Append(name, chunk...); err != nil {
						b.Error(err)
						return
					}
				}
			})
			// Drain in-flight compressions inside the timed region so both
			// configurations account for the full compression cost.
			if err := store.Sync(); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			if err := store.Close(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkStoreQuery measures parallel 512-sample range queries over a
// prepopulated multi-series store, with the decoded-block cache on and off.
func BenchmarkStoreQuery(b *testing.B) {
	const nSeries, perSeries = 8, 8192
	for _, cfg := range []struct {
		name        string
		cacheBlocks int
	}{
		{"cache-on", 256},
		{"cache-off", -1},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			store, err := OpenStoreOptions(b.TempDir(), storeBenchOptions(16, 0, cfg.cacheBlocks))
			if err != nil {
				b.Fatal(err)
			}
			for s := 0; s < nSeries; s++ {
				if err := store.Append(fmt.Sprintf("series-%02d", s), benchSeries(perSeries, 48, 0.5)...); err != nil {
					b.Fatal(err)
				}
			}
			if err := store.Flush(); err != nil {
				b.Fatal(err)
			}
			var seed atomic.Int64
			b.SetBytes(512 * 8)
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				rng := rand.New(rand.NewSource(seed.Add(1)))
				for pb.Next() {
					s := rng.Intn(nSeries)
					from := rng.Intn(perSeries - 512)
					if _, err := store.Query(fmt.Sprintf("series-%02d", s), from, from+512); err != nil {
						b.Error(err)
						return
					}
				}
			})
			b.StopTimer()
			if err := store.Close(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// benchCodecs is the codec dimension of the store benchmarks: the default
// lossy CAMEO, one lossless XOR codec, and one pointwise-lossy segment
// codec — the three fidelity classes a deployment chooses between.
func benchCodecs() []struct {
	name  string
	codec Codec
} {
	return []struct {
		name  string
		codec Codec
	}{
		{"cameo", nil}, // nil Codec selects CAMEO built from Compression
		{"elf", CodecELF()},
		{"swing", CodecSwing(0)},
	}
}

// BenchmarkStoreAppendCodec ingests 512-sample chunks from parallel
// appenders under each codec class, Sync included, so the per-codec block
// encode cost is visible end to end (CAMEO pays its greedy simplification,
// the XOR codecs are cheap but write more bytes).
func BenchmarkStoreAppendCodec(b *testing.B) {
	chunk := benchSeries(512, 48, 0.5)
	for _, cc := range benchCodecs() {
		b.Run(cc.name, func(b *testing.B) {
			opt := storeBenchOptions(16, 0, -1)
			opt.Codec = cc.codec
			store, err := OpenStoreOptions(b.TempDir(), opt)
			if err != nil {
				b.Fatal(err)
			}
			var id atomic.Int64
			b.SetBytes(int64(len(chunk) * 8))
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				name := fmt.Sprintf("series-%02d", id.Add(1))
				for pb.Next() {
					if err := store.Append(name, chunk...); err != nil {
						b.Error(err)
						return
					}
				}
			})
			if err := store.Sync(); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			if err := store.Close(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkStoreQueryCodec measures parallel 512-sample range queries over
// a prepopulated store under each codec class with the decoded cache off,
// so the per-codec block decode cost dominates.
func BenchmarkStoreQueryCodec(b *testing.B) {
	const nSeries, perSeries = 4, 8192
	for _, cc := range benchCodecs() {
		b.Run(cc.name, func(b *testing.B) {
			opt := storeBenchOptions(16, 0, -1)
			opt.Codec = cc.codec
			store, err := OpenStoreOptions(b.TempDir(), opt)
			if err != nil {
				b.Fatal(err)
			}
			for s := 0; s < nSeries; s++ {
				if err := store.Append(fmt.Sprintf("series-%02d", s), benchSeries(perSeries, 48, 0.5)...); err != nil {
					b.Fatal(err)
				}
			}
			if err := store.Flush(); err != nil {
				b.Fatal(err)
			}
			var seed atomic.Int64
			b.SetBytes(512 * 8)
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				rng := rand.New(rand.NewSource(seed.Add(1)))
				for pb.Next() {
					s := rng.Intn(nSeries)
					from := rng.Intn(perSeries - 512)
					if _, err := store.Query(fmt.Sprintf("series-%02d", s), from, from+512); err != nil {
						b.Error(err)
						return
					}
				}
			})
			b.StopTimer()
			if err := store.Close(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkAblationBlocking measures compression time vs blocking size
// (the Table 3 columns) on one mid-size series.
func BenchmarkAblationBlocking(b *testing.B) {
	xs := benchSeries(4000, 48, 0.5)
	for _, hops := range []struct {
		name string
		h    int
	}{
		{"h1", 1}, {"h-log-n", 12}, {"h-5log-n", 60}, {"unblocked", -1},
	} {
		b.Run(hops.name, func(b *testing.B) {
			opt := Options{Lags: 48, Epsilon: 0.01, TargetRatio: 10, BlockHops: hops.h}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Compress(xs, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
