// Anomaly-detection pipeline (paper Figure 13 style): plant an anomaly in a
// seasonal series, compress with CAMEO, and run Matrix-Profile discord
// detection two ways — the naive all-pairs Euclidean profile over the dense
// series (rMP, O(N^2 m)) and the paper's irregular-series variant directly
// on the compressed points (iMP, O(N^2 m') with m' << m), which skips
// materialization entirely.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"time"

	cameo "repro"
	"repro/internal/anomaly"
)

func main() {
	// Seasonal series with a burst anomaly planted at 6200.
	rng := rand.New(rand.NewSource(3))
	n := 8192
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = math.Sin(2*math.Pi*float64(i)/128) +
			0.4*math.Sin(2*math.Pi*float64(i)/31) +
			0.1*rng.NormFloat64()
	}
	const anomalyAt, anomalyLen = 6200, 90
	for i := anomalyAt; i < anomalyAt+anomalyLen; i++ {
		xs[i] += 2.5 * math.Sin(math.Pi*float64(i-anomalyAt)/anomalyLen)
	}

	// Compress 10x while preserving 128 lags of autocorrelation.
	start := time.Now()
	res, err := cameo.Compress(xs, cameo.Options{Lags: 128, TargetRatio: 10})
	if err != nil {
		log.Fatal(err)
	}
	compressTime := time.Since(start)
	fmt.Printf("compressed %d -> %d points (CR %.1fx, ACF dev %.4g) in %v\n\n",
		n, res.Compressed.Len(), res.CompressionRatio(), res.Deviation,
		compressTime.Round(time.Millisecond))

	m := 150

	// 1. rMP: naive all-pairs Euclidean profile over the raw dense series.
	start = time.Now()
	p1 := anomaly.NaiveMatrixProfile(xs, m)
	loc1, _ := p1.Discord()
	t1 := time.Since(start)

	// 2. iMP: the same profile evaluated only at the retained points.
	start = time.Now()
	p2 := cameo.IrregularMatrixProfile(res.Compressed, m)
	loc2, _ := p2.Discord()
	t2 := time.Since(start)

	fmt.Printf("true anomaly:           [%d, %d)\n", anomalyAt, anomalyAt+anomalyLen)
	fmt.Printf("rMP over raw series:    discord at %d (%v)\n", loc1, t1.Round(time.Millisecond))
	fmt.Printf("iMP over %4d points:   discord at %d (%v)\n", res.Compressed.Len(), loc2, t2.Round(time.Millisecond))
	fmt.Printf("\nend-to-end: compress+iMP %v vs rMP %v (%.1fx faster)\n",
		(compressTime + t2).Round(time.Millisecond), t1.Round(time.Millisecond),
		float64(t1)/float64(compressTime+t2))

	hit := func(loc int) string {
		if loc >= anomalyAt-m && loc <= anomalyAt+anomalyLen+m {
			return "HIT"
		}
		return "MISS"
	}
	fmt.Printf("rMP: %s   iMP: %s\n", hit(loc1), hit(loc2))
}
