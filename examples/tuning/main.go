// Tuning walkthrough: the three problem variants on one dataset —
// error-bounded (Definition 1), on-aggregates (Definition 2), and
// compression-centric (Definition 3) — plus PACF preservation and a
// comparison against the baselines at the same bound.
package main

import (
	"fmt"
	"log"

	cameo "repro"
)

func main() {
	spec, err := cameo.DatasetByName("Pedestrian")
	if err != nil {
		log.Fatal(err)
	}
	xs := spec.GenerateN(24*90, 5) // 90 days of hourly counts

	// Definition 1 — bound the ACF deviation, maximize compression.
	fmt.Println("Definition 1: error-bounded (eps sweep)")
	for _, eps := range []float64{0.005, 0.01, 0.05, 0.1} {
		res, err := cameo.Compress(xs, cameo.Options{Lags: 24, Epsilon: eps})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  eps=%-6g CR %6.1fx  dev %.4f\n", eps, res.CompressionRatio(), res.Deviation)
	}

	// Definition 2 — preserve the ACF of daily means instead of raw hours:
	// far fewer constrained lags, far higher compression.
	fmt.Println("\nDefinition 2: on daily-mean aggregates (7 weekly lags)")
	res, err := cameo.Compress(xs, cameo.Options{
		Lags: 7, Epsilon: 0.01, AggWindow: 24, AggFunc: cameo.AggMean,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  eps=0.01 CR %6.1fx  dev %.4f\n", res.CompressionRatio(), res.Deviation)

	// Definition 3 — hit an exact ratio, report the deviation achieved.
	fmt.Println("\nDefinition 3: compression-centric (ratio sweep)")
	for _, cr := range []float64{5, 10, 20} {
		res, err := cameo.Compress(xs, cameo.Options{Lags: 24, TargetRatio: cr})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  target %4.0fx -> CR %6.1fx  dev %.4f\n", cr, res.CompressionRatio(), res.Deviation)
	}

	// Preserving a lag subset (§5.5): the tracker maintains ONLY the listed
	// lags, so per-candidate evaluation drops from O(L*m) to O(|subset|*m) —
	// the 3-of-48 constraint below compresses several times faster than the
	// full 24-lag one (see the "Performance model" section in ROADMAP.md and
	// BENCH_PR3.json) while still pinning the lags a daily-seasonal
	// forecaster relies on.
	fmt.Println("\nLagSubset: constrain only lags {1, 12, 24} (faster + looser)")
	res, err = cameo.Compress(xs, cameo.Options{Lags: 24, Epsilon: 0.01, LagSubset: []int{1, 12, 24}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  eps=0.01 CR %6.1fx  dev %.4f (on the 3 selected lags)\n", res.CompressionRatio(), res.Deviation)

	// PACF preservation (costlier: Durbin-Levinson per evaluation; a
	// LagSubset also truncates the recursion at the largest selected lag).
	fmt.Println("\nPACF preservation")
	res, err = cameo.Compress(xs, cameo.Options{Lags: 24, Epsilon: 0.01, Statistic: cameo.StatPACF})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  eps=0.01 CR %6.1fx  PACF dev %.4f\n", res.CompressionRatio(), res.Deviation)

	// Baselines at the same ACF bound, for context.
	fmt.Println("\nBaselines at eps=0.05")
	opt := cameo.SimplifyOptions{Lags: 24, Epsilon: 0.05}
	if r, err := cameo.VW(xs, opt); err == nil {
		fmt.Printf("  VW    CR %6.1fx  dev %.4f\n", r.CompressionRatio(), r.Deviation)
	}
	if r, err := cameo.PIP(xs, cameo.PIPVertical, opt); err == nil {
		fmt.Printf("  PIPv  CR %6.1fx  dev %.4f\n", r.CompressionRatio(), r.Deviation)
	}
	if r, err := cameo.TurningPoints(xs, cameo.TPSum, opt); err != nil {
		fmt.Printf("  TPs   cannot meet the bound (%v)\n", err)
	} else {
		fmt.Printf("  TPs   CR %6.1fx  dev %.4f\n", r.CompressionRatio(), r.Deviation)
	}
	cam, err := cameo.Compress(xs, cameo.Options{Lags: 24, Epsilon: 0.05})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  CAMEO CR %6.1fx  dev %.4f\n", cam.CompressionRatio(), cam.Deviation)
}
