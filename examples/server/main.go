// HTTP serving: run the cameod service in-process (the embedder path —
// cameo.NewHandler mounted on our own listener), drive it with concurrent
// write and query clients, and shut it down gracefully. This is the
// network face of the store: batched ingest with backpressure, range
// queries streamed chunk-by-chunk off a cursor, and downsampled
// aggregates riding the codec pushdown — over plain HTTP.
//
// CI runs this example as the serving-path smoke test: it exits non-zero
// if any request fails or if the HTTP-read data does not match what the
// clients wrote.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"math"
	"math/rand"
	"net"
	"net/http"
	"net/url"
	"os"
	"strconv"
	"strings"
	"sync"

	cameo "repro"
)

const (
	writers   = 3
	batches   = 8
	batchSize = 300
)

func main() {
	dir, err := os.MkdirTemp("", "cameod-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	store, err := cameo.OpenStoreOptions(dir, cameo.StoreOptions{
		Compression: cameo.Options{Lags: 24, Epsilon: 0.05},
		BlockSize:   512,
		Workers:     2,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The embedder path: mount the store's handler on our own server.
	// (cmd/cameod is the same thing as a standalone daemon binary.)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: cameo.NewHandler(store, cameo.ServerOptions{})}
	go srv.Serve(ln)
	base := "http://" + ln.Addr().String()
	fmt.Printf("serving CAMEO store on %s\n\n", base)

	// Concurrent writers: each pushes its sensor's batches over HTTP,
	// alternating the newline and JSON batch forms.
	var wg sync.WaitGroup
	errs := make(chan error, writers+2)
	for w := range writers {
		rng := rand.New(rand.NewSource(int64(w)))
		xs := make([]float64, batches*batchSize)
		for i := range xs {
			xs[i] = 10*float64(w+1) + 4*math.Sin(2*math.Pi*float64(i)/24) + 0.3*rng.NormFloat64()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			name := fmt.Sprintf("sensor/%d", w)
			for b := range batches {
				chunk := xs[b*batchSize : (b+1)*batchSize]
				var body, ct string
				if b%2 == 0 {
					ct = "application/json"
					vals := make([]string, len(chunk))
					for i, v := range chunk {
						vals[i] = strconv.FormatFloat(v, 'g', -1, 64)
					}
					body = fmt.Sprintf(`{"series":[{"name":%q,"values":[%s]}]}`, name, strings.Join(vals, ","))
				} else {
					ct = "text/plain"
					var sb strings.Builder
					for _, v := range chunk {
						fmt.Fprintf(&sb, "%s %s\n", name, strconv.FormatFloat(v, 'g', -1, 64))
					}
					body = sb.String()
				}
				resp, err := http.Post(base+"/api/v1/write", ct, strings.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				msg, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("write %s batch %d: %d %s", name, b, resp.StatusCode, msg)
					return
				}
			}
		}()
	}

	// Concurrent readers: stream ranges and daily aggregates while the
	// writers are still pushing.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := range 20 {
			name := url.QueryEscape(fmt.Sprintf("sensor/%d", i%writers))
			resp, err := http.Get(fmt.Sprintf("%s/api/v1/query?series=%s&from=%d&to=%d", base, name, i*10, i*10+400))
			if err != nil {
				errs <- err
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			resp, err = http.Get(fmt.Sprintf("%s/api/v1/query_agg?series=%s&step=96&aggfn=max", base, name))
			if err != nil {
				errs <- err
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		log.Fatal(err)
	}

	// Every HTTP-written point must read back (values go through the
	// lossy CAMEO codec, so compare the HTTP view against the store's own
	// reconstruction — they must agree exactly).
	total := batches * batchSize
	for w := range writers {
		name := fmt.Sprintf("sensor/%d", w)
		want, err := store.Query(name, 0, total)
		if err != nil || len(want) != total {
			log.Fatalf("store query %s: %d samples, %v", name, len(want), err)
		}
		resp, err := http.Get(base + "/api/v1/query?series=" + url.QueryEscape(name) + "&format=csv")
		if err != nil {
			log.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		rows := strings.Split(strings.TrimSpace(string(body)), "\n")
		if len(rows) != total+1 {
			log.Fatalf("HTTP csv for %s: %d rows, want %d", name, len(rows)-1, total)
		}
		for i, row := range rows[1:] {
			_, valStr, _ := strings.Cut(row, ",")
			v, err := strconv.ParseFloat(valStr, 64)
			if err != nil || v != want[i] {
				log.Fatalf("HTTP csv for %s row %d: %q vs store %v", name, i, valStr, want[i])
			}
		}
	}
	fmt.Printf("%d writers x %d batches of %d points ingested over HTTP; all %d samples read back bit-identical\n",
		writers, batches, batchSize, writers*total)

	// Batch dashboard query: all sensors in one POST, answered as one
	// NDJSON stream with the sections in request order. Server-side the
	// per-series scans fan out across the store's worker pool.
	names := make([]string, writers)
	namesJSON := make([]string, writers)
	for w := range writers {
		names[w] = fmt.Sprintf("sensor/%d", w)
		namesJSON[w] = fmt.Sprintf("%q", names[w])
	}
	resp, err := http.Post(base+"/api/v1/query", "application/json",
		strings.NewReader(fmt.Sprintf(`{"series":[%s]}`, strings.Join(namesJSON, ","))))
	if err != nil {
		log.Fatal(err)
	}
	batch := make(map[string][]float64)
	dec := json.NewDecoder(resp.Body)
	for dec.More() {
		var line struct {
			Series string    `json:"series"`
			Values []float64 `json:"values"`
			Error  string    `json:"error"`
		}
		if err := dec.Decode(&line); err != nil {
			log.Fatal(err)
		}
		if line.Error != "" {
			log.Fatalf("batch section %s: %s", line.Series, line.Error)
		}
		batch[line.Series] = append(batch[line.Series], line.Values...)
	}
	resp.Body.Close()
	for _, name := range names {
		want, err := store.Query(name, 0, total)
		if err != nil {
			log.Fatal(err)
		}
		got := batch[name]
		if len(got) != len(want) {
			log.Fatalf("batch section %s: %d samples, want %d", name, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				log.Fatalf("batch section %s sample %d: %v vs store %v", name, i, got[i], want[i])
			}
		}
	}
	fmt.Printf("batch POST /api/v1/query returned all %d series in one stream, bit-identical again\n", writers)

	// Downsampled dashboard query: one value per simulated day.
	resp, err = http.Get(base + "/api/v1/query_agg?series=sensor%2F0&step=96&aggfn=mean")
	if err != nil {
		log.Fatal(err)
	}
	var agg struct {
		Values []float64 `json:"values"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&agg); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("daily means of sensor/0 via query_agg: %d windows, first %.2f\n", len(agg.Values), agg.Values[0])

	// Operational surface.
	resp, err = http.Get(base + "/statusz")
	if err != nil {
		log.Fatal(err)
	}
	status, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Printf("\n/statusz:\n%s\n", status)

	// Scrape /metrics twice with traffic in between: the core families
	// must be present and valid exposition, and the cumulative ones must
	// be monotonic across scrapes — this is CI's check that the
	// Prometheus surface actually works end to end.
	first := scrapeMetrics(base)
	for _, family := range []string{
		"cameo_store_append_latency_seconds_count",
		"cameo_store_samples",
		`cameo_http_requests_total{endpoint="query",status="2xx"}`,
		`cameo_http_inflight_requests{endpoint="query"}`,
	} {
		if _, ok := first[family]; !ok {
			log.Fatalf("/metrics missing %s", family)
		}
	}
	hasBucket := false
	for sample := range first {
		if strings.HasPrefix(sample, `cameo_http_request_seconds_bucket{endpoint="query",le=`) {
			hasBucket = true
			break
		}
	}
	if !hasBucket {
		log.Fatal("/metrics has no query latency buckets")
	}
	resp, err = http.Post(base+"/api/v1/write", "text/plain", strings.NewReader("sensor/0 1.5\n"))
	if err != nil {
		log.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	resp, err = http.Get(base + "/api/v1/query?series=sensor%2F0&from=0&to=100")
	if err != nil {
		log.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	second := scrapeMetrics(base)
	for _, family := range []string{
		"cameo_store_append_latency_seconds_count",
		"cameo_store_samples",
		`cameo_http_requests_total{endpoint="query",status="2xx"}`,
	} {
		if second[family] < first[family] {
			log.Fatalf("%s went backwards across scrapes: %v -> %v", family, first[family], second[family])
		}
	}
	if second[`cameo_http_requests_total{endpoint="query",status="2xx"}`] <=
		first[`cameo_http_requests_total{endpoint="query",status="2xx"}`] {
		log.Fatal("query request counter did not advance between scrapes")
	}
	fmt.Printf("/metrics scraped twice: %d samples, core families present and monotonic\n", len(second))

	// Graceful shutdown: drain HTTP, then flush+close the store — the
	// same order cmd/cameod uses on SIGTERM.
	if err := srv.Shutdown(context.Background()); err != nil {
		log.Fatal(err)
	}
	if err := store.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("drained and closed cleanly")
}

// scrapeMetrics fetches /metrics and parses the exposition into a
// sample-name → value map ("family{labels}" keys), failing the example
// on a malformed line — the parse is itself the format check.
func scrapeMetrics(base string) map[string]float64 {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		log.Fatalf("/metrics Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	samples := make(map[string]float64)
	for _, line := range strings.Split(strings.TrimSpace(string(body)), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		name, valStr, ok := strings.Cut(line, " ")
		if !ok {
			log.Fatalf("/metrics: malformed sample line %q", line)
		}
		v, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			log.Fatalf("/metrics: bad value in %q: %v", line, err)
		}
		if _, dup := samples[name]; dup {
			log.Fatalf("/metrics: duplicate sample %q", name)
		}
		samples[name] = v
	}
	return samples
}
