// Embedded time-series store: ingest three sensors into the CAMEO-backed
// sharded Store, query ranges back, and inspect the disk footprint and
// engine counters — the database-integration story of an EDBT paper, end
// to end. Appends hand full blocks to an async compression pool; queries
// hit the decoded-block LRU cache on repeats.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"
	"path/filepath"

	cameo "repro"
)

func main() {
	dir := filepath.Join(os.TempDir(), "cameo-store-demo")
	_ = os.RemoveAll(dir)
	defer os.RemoveAll(dir)

	store, err := cameo.OpenStoreOptions(dir, cameo.StoreOptions{
		Compression: cameo.Options{Lags: 24, Epsilon: 0.01},
		BlockSize:   1024,
		Shards:      8,  // independent lock domains: the sensors never contend
		Workers:     2,  // async block compression off the append path
		CacheBlocks: 64, // decoded blocks kept hot for repeated queries
	})
	if err != nil {
		log.Fatal(err)
	}

	// Three hourly sensors, two weeks each, arriving interleaved.
	rng := rand.New(rand.NewSource(17))
	n := 14 * 24 * 4
	sensors := []string{"hall/temp", "roof/wind", "lab/load"}
	raw := make(map[string][]float64)
	for si, name := range sensors {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = 15*float64(si+1) +
				6*math.Sin(2*math.Pi*float64(i)/24+float64(si)) +
				0.5*rng.NormFloat64()
		}
		raw[name] = xs
	}
	for i := 0; i < n; i += 96 { // daily ingestion batches
		for _, name := range sensors {
			end := i + 96
			if end > n {
				end = n
			}
			if err := store.Append(name, raw[name][i:end]...); err != nil {
				log.Fatal(err)
			}
		}
	}
	if err := store.Close(); err != nil {
		log.Fatal(err)
	}

	// Reopen (as a restarted process would) and query.
	store, err = cameo.OpenStore(dir, cameo.Options{Lags: 24, Epsilon: 0.01}, 1024)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("series in store: %v\n\n", store.Series())
	var totalDisk int64
	for _, name := range store.Series() {
		st, err := store.SeriesStats(name)
		if err != nil {
			log.Fatal(err)
		}
		totalDisk += st.DiskBytes
		// Query one day from the middle and compare its ACF to the raw data.
		from, to := n/2, n/2+96
		got, err := store.Query(name, from, to)
		if err != nil {
			log.Fatal(err)
		}
		dev := 0.0
		origACF := cameo.ACF(raw[name][from:to], 24)
		gotACF := cameo.ACF(got, 24)
		for i := range origACF {
			dev += math.Abs(origACF[i] - gotACF[i])
		}
		dev /= float64(len(origACF))
		fmt.Printf("%-10s %5d samples, %2d blocks, %6d bytes on disk, day-query ACF MAE %.4f\n",
			name, st.Samples, st.Blocks, st.DiskBytes, dev)
	}
	rawBytes := int64(3 * n * 8)
	fmt.Printf("\ntotal: %d bytes vs %d raw (%.0fx smaller), per-block ACF bound 0.01\n",
		totalDisk, rawBytes, float64(rawBytes)/float64(totalDisk))

	// Re-run the same queries: the decoded-block cache now serves them
	// from memory, visible in the engine totals.
	for _, name := range store.Series() {
		if _, err := store.Query(name, n/2, n/2+96); err != nil {
			log.Fatal(err)
		}
	}
	t := store.Stats()
	fmt.Printf("engine: %d series, %d samples, %d B durable, cache %d hits / %d misses\n",
		t.Series, t.Samples, t.DiskBytes, t.CacheHits, t.CacheMisses)
}
