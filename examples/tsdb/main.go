// Embedded time-series store: ingest three sensors into the CAMEO-backed
// sharded Store, query ranges back, and inspect the disk footprint and
// engine counters — the database-integration story of an EDBT paper, end
// to end. Appends hand full blocks to an async compression pool;
// full-block reads land in the decoded LRU cache, and partial-range reads
// push the decode down to the codec.
//
// The read side shows all three query shapes: Query materializes a range,
// Cursor streams it chunk by chunk without materializing (cold blocks
// decode only the overlapping samples), and QueryAgg answers the
// downsampled windows a dashboard plots — for CAMEO blocks computed
// straight from the compressed form, no samples materialized.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"
	"path/filepath"

	cameo "repro"
)

func main() {
	dir := filepath.Join(os.TempDir(), "cameo-store-demo")
	_ = os.RemoveAll(dir)
	defer os.RemoveAll(dir)

	store, err := cameo.OpenStoreOptions(dir, cameo.StoreOptions{
		Compression: cameo.Options{Lags: 24, Epsilon: 0.01},
		BlockSize:   1024,
		Shards:      8,  // independent lock domains: the sensors never contend
		Workers:     2,  // async block compression off the append path
		CacheBlocks: 64, // decoded blocks kept hot for repeated queries
	})
	if err != nil {
		log.Fatal(err)
	}

	// Three hourly sensors, two weeks each, arriving interleaved.
	rng := rand.New(rand.NewSource(17))
	n := 14 * 24 * 4
	sensors := []string{"hall/temp", "roof/wind", "lab/load"}
	raw := make(map[string][]float64)
	for si, name := range sensors {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = 15*float64(si+1) +
				6*math.Sin(2*math.Pi*float64(i)/24+float64(si)) +
				0.5*rng.NormFloat64()
		}
		raw[name] = xs
	}
	for i := 0; i < n; i += 96 { // daily ingestion batches
		for _, name := range sensors {
			end := i + 96
			if end > n {
				end = n
			}
			if err := store.Append(name, raw[name][i:end]...); err != nil {
				log.Fatal(err)
			}
		}
	}
	if err := store.Close(); err != nil {
		log.Fatal(err)
	}

	// Reopen (as a restarted process would) and query.
	store, err = cameo.OpenStore(dir, cameo.Options{Lags: 24, Epsilon: 0.01}, 1024)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("series in store: %v\n\n", store.Series())
	var totalDisk int64
	for _, name := range store.Series() {
		st, err := store.SeriesStats(name)
		if err != nil {
			log.Fatal(err)
		}
		totalDisk += st.DiskBytes
		// Query one day from the middle and compare its ACF to the raw data.
		from, to := n/2, n/2+96
		got, err := store.Query(name, from, to)
		if err != nil {
			log.Fatal(err)
		}
		dev := 0.0
		origACF := cameo.ACF(raw[name][from:to], 24)
		gotACF := cameo.ACF(got, 24)
		for i := range origACF {
			dev += math.Abs(origACF[i] - gotACF[i])
		}
		dev /= float64(len(origACF))
		fmt.Printf("%-10s %5d samples, %2d blocks, %6d bytes on disk, day-query ACF MAE %.4f\n",
			name, st.Samples, st.Blocks, st.DiskBytes, dev)
	}
	rawBytes := int64(3 * n * 8)
	fmt.Printf("\ntotal: %d bytes vs %d raw (%.0fx smaller), per-block ACF bound 0.01\n",
		totalDisk, rawBytes, float64(rawBytes)/float64(totalDisk))

	// Stream a two-day window with a cursor instead of materializing it:
	// chunks arrive block by block (cold blocks decode only the overlap),
	// and running statistics need no range-sized buffer.
	cur, err := store.Cursor(sensors[0], n/4, n/4+192)
	if err != nil {
		log.Fatal(err)
	}
	chunks, samples := 0, 0
	lo, hi := math.Inf(1), math.Inf(-1)
	for {
		chunk, ok := cur.Next()
		if !ok {
			break
		}
		chunks++
		samples += len(chunk)
		for _, v := range chunk {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	cur.Close()
	if err := cur.Err(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncursor over %q [%d,%d): %d samples in %d chunks, min %.2f max %.2f\n",
		sensors[0], n/4, n/4+192, samples, chunks, lo, hi)

	// Downsampled dashboard: one value per day per sensor, computed by
	// aggregate pushdown — CAMEO blocks answer sum/min/max/count from
	// their retained points without reconstructing a single sample.
	fmt.Println("\ndaily means (QueryAgg, step = 96 samples):")
	for _, name := range store.Series() {
		daily, err := store.QueryAgg(name, 0, n, 96, cameo.AggMean)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s", name)
		for _, v := range daily[:7] {
			fmt.Printf(" %6.2f", v)
		}
		fmt.Printf("  ... (%d days)\n", len(daily))
	}

	// Re-run the same partial-range queries: each is answered by a fresh
	// range decode (cheaper than reconstructing the block; partial decodes
	// deliberately never fill the cache). Full-block reads and
	// freshly-written blocks are what populate the LRU cache.
	for _, name := range store.Series() {
		if _, err := store.Query(name, n/2, n/2+96); err != nil {
			log.Fatal(err)
		}
	}
	t := store.Stats()
	fmt.Printf("\nengine: %d series, %d samples, %d B durable, cache %d hits / %d misses, %d range decodes, %d agg pushdowns\n",
		t.Series, t.Samples, t.DiskBytes, t.CacheHits, t.CacheMisses, t.RangeDecodes, t.AggPushdowns)
}
