// Quickstart: compress a seasonal sensor series with an ACF-deviation
// guarantee, inspect the result, and reconstruct it.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	cameo "repro"
)

func main() {
	// A week of synthetic hourly sensor data: daily cycle + noise.
	rng := rand.New(rand.NewSource(42))
	xs := make([]float64, 7*24)
	for i := range xs {
		xs[i] = 20 + 8*math.Sin(2*math.Pi*float64(i)/24) + 0.6*rng.NormFloat64()
	}

	// Compress with a hard guarantee: the mean absolute deviation of the
	// first 24 autocorrelation lags stays below 0.02.
	res, err := cameo.Compress(xs, cameo.Options{
		Lags:    24,
		Epsilon: 0.02,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("points:            %d -> %d\n", len(xs), res.Compressed.Len())
	fmt.Printf("compression ratio: %.1fx\n", res.CompressionRatio())
	fmt.Printf("ACF deviation:     %.4f (bound 0.02)\n", res.Deviation)

	// Reconstruct and compare the ACF directly.
	recon := res.Compressed.Decompress()
	origACF := cameo.ACF(xs, 24)
	reconACF := cameo.ACF(recon, 24)
	fmt.Printf("ACF lag 1:  %.4f -> %.4f\n", origACF[0], reconACF[0])
	fmt.Printf("ACF lag 24: %.4f -> %.4f\n", origACF[23], reconACF[23])

	// The guarantee can be re-verified independently at any time.
	dev, err := cameo.Deviation(xs, res.Compressed, cameo.Options{Lags: 24, Epsilon: 0.02})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("re-verified deviation: %.4f\n", dev)
}
