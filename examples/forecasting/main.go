// Forecasting pipeline (paper EXP3): compress a highly seasonal series at
// increasing ratios with CAMEO and with Visvalingam-Whyatt, train the
// paper's EXP3 models (DHR and LSTM) on the reconstructions, and score the
// forecasts against the raw future. Preserving the ACF keeps forecasting
// accuracy nearly flat even at high compression.
package main

import (
	"fmt"
	"log"

	cameo "repro"
)

func main() {
	// The UKElecDem replica: half-hourly national electricity demand with a
	// strong daily cycle of 48 samples.
	spec, err := cameo.DatasetByName("UKElecDem")
	if err != nil {
		log.Fatal(err)
	}
	xs := spec.GenerateN(48*120, 7) // 120 days
	period := spec.Period
	horizon := period // forecast one day ahead

	train := xs[:len(xs)-horizon]
	test := xs[len(xs)-horizon:]
	fmt.Printf("dataset: %s (n=%d, period=%d, seasonal strength %.2f)\n\n",
		spec.Name, len(xs), period, cameo.SeasonalStrength(xs, period))

	fmt.Println("CR      method  DHR-mSMAPE   LSTM-mSMAPE")
	for _, cr := range []float64{1, 10, 25, 50, 100} {
		for _, method := range []string{"CAMEO", "VW"} {
			recon := train
			if cr > 1 {
				switch method {
				case "CAMEO":
					res, err := cameo.Compress(train, cameo.Options{Lags: period, TargetRatio: cr})
					if err != nil {
						log.Fatal(err)
					}
					recon = res.Compressed.Decompress()
				case "VW":
					r, err := cameo.VW(train, cameo.SimplifyOptions{Lags: period, TargetRatio: cr})
					if err != nil {
						log.Fatal(err)
					}
					recon = r.Compressed.Decompress()
				}
			}
			dhr, err := cameo.EvaluateForecast(&cameo.DHR{Period: period}, recon, test, horizon)
			if err != nil {
				log.Fatal(err)
			}
			lstm := &cameo.LSTM{Window: period, Hidden: 12, Epochs: 15, Seed: 1}
			lev, err := cameo.EvaluateForecast(lstm, recon, test, horizon)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-7.0f %-7s %-12.4f %-12.4f\n", cr, method, dhr.MSMAPE, lev.MSMAPE)
			if cr == 1 {
				break // the raw baseline is method-independent
			}
		}
	}
}
