// Codec comparison: encode one dataset through every registered block
// codec and report compression ratio, reconstruction error, ACF deviation
// (the statistic CAMEO is designed to preserve), and encode/decode speed —
// the lossy-vs-lossless trade-off behind StoreOptions.Codec, on one table.
//
// The dataset is the paper's ElecPower replica (hourly electricity demand
// with a strong daily cycle). Lossless codecs reproduce it bit-exactly;
// CAMEO bounds the ACF deviation; the segment codecs bound per-value error
// at 1% of the value range.
package main

import (
	"fmt"
	"math"
	"os"
	"text/tabwriter"
	"time"

	cameo "repro"
	"repro/internal/datasets"
)

func main() {
	spec := datasets.ElecPower()
	xs := spec.GenerateN(8192, 7)
	fmt.Printf("dataset: %s replica, %d samples, lags=%d\n\n", spec.Name, len(xs), spec.Lags)

	codecs := []cameo.Codec{
		cameo.CodecCAMEO(cameo.Options{Lags: spec.Lags, Epsilon: 0.02}),
		cameo.CodecGorilla(),
		cameo.CodecChimp(),
		cameo.CodecELF(),
		cameo.CodecPMC(0),
		cameo.CodecSwing(0),
		cameo.CodecSimPiece(0),
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "codec\tlossy\tbytes\tratio\tmax err\tACF dev\tencode\tdecode")
	for _, c := range codecs {
		t0 := time.Now()
		data, err := cameo.EncodeBlock(c, xs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "codecs: %s encode: %v\n", c.Name(), err)
			os.Exit(1)
		}
		encDur := time.Since(t0)

		t0 = time.Now()
		recon, _, err := cameo.DecodeBlock(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "codecs: %s decode: %v\n", c.Name(), err)
			os.Exit(1)
		}
		decDur := time.Since(t0)

		maxErr := 0.0
		for i := range xs {
			if e := math.Abs(xs[i] - recon[i]); e > maxErr {
				maxErr = e
			}
		}
		acfDev := acfDeviation(xs, recon, spec.Lags)
		raw := 8 * len(xs)
		fmt.Fprintf(w, "%s\t%v\t%d\t%.2fx\t%.4g\t%.4g\t%s\t%s\n",
			c.Name(), c.Lossy(), len(data), float64(raw)/float64(len(data)),
			maxErr, acfDev, encDur.Round(time.Microsecond), decDur.Round(time.Microsecond))
	}
	w.Flush()

	fmt.Println("\nLossless codecs replay appends bit-exactly (durability-grade archive);")
	fmt.Println("CAMEO keeps the ACF within its bound at a much higher ratio; PMC/Swing/")
	fmt.Println("Sim-Piece bound per-value error instead. Pick per workload via")
	fmt.Println("StoreOptions.Codec — blocks are self-describing, so stores can mix codecs.")
}

// acfDeviation is the mean absolute deviation between the ACFs of the
// original and reconstructed series (the paper's default measure).
func acfDeviation(xs, recon []float64, lags int) float64 {
	a := cameo.ACF(xs, lags)
	b := cameo.ACF(recon, lags)
	sum := 0.0
	for i := range a {
		sum += math.Abs(a[i] - b[i])
	}
	return sum / float64(len(a))
}
