// Storage lifecycle: run a Store the way an always-on deployment does.
// Trickle ingest leaves a trail of under-filled blocks; compaction merges
// them into full ones with bit-identical reconstructions, rollup tiers
// materialize the downsampled aggregates dashboards actually plot, and
// retention trims the raw series to an age budget — with the tiers
// continuing to answer month-scale QueryAgg calls over data whose raw
// blocks are long deleted. One Maintain() call (or the LifecycleInterval
// knob) drives all three.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"
	"path/filepath"

	cameo "repro"
)

func main() {
	dir := filepath.Join(os.TempDir(), "cameo-lifecycle-demo")
	_ = os.RemoveAll(dir)
	defer os.RemoveAll(dir)

	// A minute-resolution sensor with a daily (1440-sample) period.
	// Rollups: hourly and daily tiers; retention: keep 4 raw days.
	store, err := cameo.OpenStoreOptions(dir, cameo.StoreOptions{
		Compression: cameo.Options{Lags: 24, Epsilon: 0.01},
		BlockSize:   1024,
		Workers:     -1, // synchronous, so the block layout below is deterministic
		Retention:   4 * 1440,
		Rollups: []cameo.RollupSpec{
			{Step: 60},   // hourly mean/sum/min/max, kept forever
			{Step: 1440}, // daily tier
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()

	// Fourteen days arriving in 96-sample trickles, flushed as they land —
	// the ingest pattern that fragments block files on real deployments.
	rng := rand.New(rand.NewSource(41))
	n := 14 * 1440
	xs := make([]float64, n)
	drift := 0.0
	for i := range xs {
		drift = 0.995*drift + 0.05*rng.NormFloat64()
		xs[i] = 70 - 12*math.Sin(2*math.Pi*float64(i)/1440) + drift
	}
	for i := 0; i < n; i += 96 {
		if err := store.Append("plant/humidity", xs[i:i+96]...); err != nil {
			log.Fatal(err)
		}
		if err := store.Flush(); err != nil {
			log.Fatal(err)
		}
	}
	st, _ := store.SeriesStats("plant/humidity")
	fmt.Printf("after trickle ingest: %d samples in %d blocks (%d B)\n",
		st.Samples, st.Blocks, st.DiskBytes)

	// One maintenance pass: compact, materialize tiers, trim to retention.
	if err := store.Maintain(); err != nil {
		log.Fatal(err)
	}
	st, _ = store.SeriesStats("plant/humidity")
	tot := store.Stats()
	fmt.Printf("after maintenance:    %d samples in %d blocks, raw history starts at %d\n",
		st.Samples, st.Blocks, st.FirstIndex)
	fmt.Printf("  compaction merged %d source blocks in %d runs\n",
		tot.CompactedBlocks, tot.CompactionRuns)
	fmt.Printf("  retention trimmed %d blocks (%d B)\n", tot.TrimmedBlocks, tot.TrimmedBytes)
	fmt.Printf("  rollup tiers hold %d samples across %d series\n\n",
		tot.RollupSamples, len(store.Series())-1)

	// A two-week daily-mean query: every window is tier-aligned, so it is
	// answered from the daily rollup — including the ten days whose raw
	// blocks retention already deleted.
	daily, err := store.QueryAgg("plant/humidity", 0, n, 1440, cameo.AggMean)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("daily means, raw blocks long gone for days 0-9:")
	for d, v := range daily {
		marker := "rollup tier"
		if d >= 10 {
			marker = "rollup tier (raw also retained)"
		}
		fmt.Printf("  day %2d  %.3f  [%s]\n", d, v, marker)
	}

	// Raw queries still work over the retained window and clamp below it.
	recent, err := store.Query("plant/humidity", n-1440, n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlast day raw reconstruction: %d samples, first %.3f\n", len(recent), recent[0])
}
