// Edge-storage pipeline: ingest a sensor stream block-by-block with the
// streaming compressor, persist the compressed series in the compact binary
// format, and read it back — the IoT deployment the paper motivates
// (30,000-sensor rigs, §1), where both the bound and the bytes matter.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"
	"path/filepath"

	cameo "repro"
)

func main() {
	// Twelve days of 1-minute humidity-like readings arriving in chunks.
	rng := rand.New(rand.NewSource(9))
	n := 12 * 1440
	stream := make([]float64, n)
	drift := 0.0
	for i := range stream {
		drift = 0.995*drift + 0.05*rng.NormFloat64()
		stream[i] = 70 - 12*math.Sin(2*math.Pi*float64(i)/1440) + drift
	}

	// Preserve 24 hourly-ACF lags within 0.01, block by block.
	sc, err := cameo.NewStreamCompressor(cameo.Options{
		Lags: 24, Epsilon: 0.01, AggWindow: 60, AggFunc: cameo.AggMean,
	}, 5760) // four-day blocks
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < n; i += 512 { // arbitrary arrival chunking
		end := i + 512
		if end > n {
			end = n
		}
		if err := sc.Push(stream[i:end]...); err != nil {
			log.Fatal(err)
		}
	}
	res, err := sc.Flush()
	if err != nil {
		log.Fatal(err)
	}

	// Persist the compact binary form.
	path := filepath.Join(os.TempDir(), "sensor.cameo")
	data := res.Compressed.Encode()
	if err := os.WriteFile(path, data, 0o644); err != nil {
		log.Fatal(err)
	}

	rawBytes := n * 8
	fmt.Printf("ingested:   %d samples (%d bytes raw)\n", n, rawBytes)
	fmt.Printf("retained:   %d points (CR %.0fx, worst block ACF dev %.4f)\n",
		res.Compressed.Len(), res.CompressionRatio(), res.Deviation)
	fmt.Printf("on disk:    %d bytes (%.0fx smaller than raw, %.1f bits/value)\n",
		len(data), float64(rawBytes)/float64(len(data)), float64(len(data)*8)/float64(n))

	// Read back and verify the reconstruction quality.
	stored, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	back, err := cameo.DecodeIrregular(stored)
	if err != nil {
		log.Fatal(err)
	}
	recon := back.Decompress()
	origACF := cameo.ACF(cameo.Aggregate(stream, 60, cameo.AggMean), 24)
	reconACF := cameo.ACF(cameo.Aggregate(recon, 60, cameo.AggMean), 24)
	var mae float64
	for i := range origACF {
		mae += math.Abs(origACF[i] - reconACF[i])
	}
	mae /= float64(len(origACF))
	fmt.Printf("read back:  %d points, whole-stream hourly ACF MAE %.4f\n", back.Len(), mae)
	_ = os.Remove(path)

	// The same pipeline, managed: hand the stream to the embedded Store
	// instead of persisting by hand — blocks compress asynchronously off
	// the append path and land as crash-consistent files.
	dir := filepath.Join(os.TempDir(), "cameo-storage-demo")
	_ = os.RemoveAll(dir)
	defer os.RemoveAll(dir)
	store, err := cameo.OpenStoreOptions(dir, cameo.StoreOptions{
		Compression: cameo.Options{Lags: 24, Epsilon: 0.01, AggWindow: 60, AggFunc: cameo.AggMean},
		BlockSize:   5760,
		Workers:     2,
	})
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < n; i += 512 {
		end := i + 512
		if end > n {
			end = n
		}
		if err := store.Append("humidity", stream[i:end]...); err != nil {
			log.Fatal(err)
		}
	}
	if err := store.Flush(); err != nil {
		log.Fatal(err)
	}
	st, err := store.SeriesStats("humidity")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("via store:  %d samples in %d blocks, %d bytes on disk (%.0fx smaller)\n",
		st.Samples, st.Blocks, st.DiskBytes, float64(rawBytes)/float64(st.DiskBytes))
	if err := store.Close(); err != nil {
		log.Fatal(err)
	}
}
