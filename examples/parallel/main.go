// Parallel compression (paper §4.4): compress a large series with the
// coarse-grained partitioned strategy, the fine-grained threaded strategy,
// and the hybrid of both, comparing wall-clock time while verifying that
// every variant honours the same ACF-deviation bound.
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	cameo "repro"
)

func main() {
	spec, err := cameo.DatasetByName("Humidity")
	if err != nil {
		log.Fatal(err)
	}
	// One-minute humidity samples, aggregated hourly (kappa=60), preserving
	// 24 lags of the hourly ACF — the dataset's Table 1 configuration.
	xs := spec.GenerateN(60*24*30, 11) // 30 days
	opt := cameo.Options{
		Lags:      spec.Lags,
		Epsilon:   0.001,
		AggWindow: spec.AggWindow,
		AggFunc:   cameo.AggMean,
	}
	fmt.Printf("n=%d, lags=%d on window %d, eps=%g, GOMAXPROCS=%d\n\n",
		len(xs), spec.Lags, spec.AggWindow, opt.Epsilon, runtime.GOMAXPROCS(0))

	type variant struct {
		name       string
		threads    int
		partitions int
	}
	variants := []variant{
		{"sequential", 1, 1},
		{"fine-grained (4 threads)", 4, 1},
		{"coarse-grained (4 partitions)", 1, 4},
		{"hybrid (2 x 4)", 2, 4},
	}
	var baseline time.Duration
	for _, v := range variants {
		o := opt
		o.Threads = v.threads
		start := time.Now()
		var res *cameo.Result
		if v.partitions > 1 {
			res, err = cameo.CompressCoarse(xs, cameo.CoarseOptions{Options: o, Partitions: v.partitions})
		} else {
			res, err = cameo.Compress(xs, o)
		}
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		if v.partitions == 1 && v.threads == 1 {
			baseline = elapsed
		}
		dev, err := cameo.Deviation(xs, res.Compressed, opt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-30s %8s  speedup %.2fx  CR %6.1fx  dev %.5f (bound %g)\n",
			v.name, elapsed.Round(time.Millisecond),
			float64(baseline)/float64(elapsed), res.CompressionRatio(), dev, opt.Epsilon)
	}
}
