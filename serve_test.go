package cameo

import (
	"encoding/json"
	"errors"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestFacadeServing exercises the embedder path: mount NewHandler in a
// custom mux, write through HTTP, and read back values bit-identical to
// the direct Store API — plus the facade's hardened range validation.
func TestFacadeServing(t *testing.T) {
	store, err := OpenStoreOptions(t.TempDir(), StoreOptions{
		Compression: Options{Lags: 24, Epsilon: 0.05},
		BlockSize:   512,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	mux := http.NewServeMux()
	mux.Handle("/", NewHandler(store, ServerOptions{}))
	mux.HandleFunc("/custom", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("embedder route"))
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	// Ingest 700 samples over HTTP in two batches.
	var lines strings.Builder
	for i := 0; i < 700; i++ {
		lines.WriteString("room/temp ")
		lines.WriteString(jsonNum(20 + 5*math.Sin(2*math.Pi*float64(i)/24)))
		lines.WriteByte('\n')
		if i == 350 {
			post(t, srv.URL+"/api/v1/write", lines.String())
			lines.Reset()
		}
	}
	post(t, srv.URL+"/api/v1/write", lines.String())

	want, err := store.Query("room/temp", 0, 700)
	if err != nil || len(want) != 700 {
		t.Fatalf("direct query: %d samples, %v", len(want), err)
	}

	resp, err := http.Get(srv.URL + "/api/v1/query?series=room%2Ftemp&format=csv")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	rows := strings.Split(strings.TrimSpace(string(body)), "\n")
	if rows[0] != "index,value" || len(rows) != 701 {
		t.Fatalf("csv response: %d rows, header %q", len(rows), rows[0])
	}
	for i, row := range rows[1:] {
		_, valStr, _ := strings.Cut(row, ",")
		var v float64
		if err := json.Unmarshal([]byte(valStr), &v); err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
		if math.Float64bits(v) != math.Float64bits(want[i]) {
			t.Fatalf("row %d: %v, want %v (bit-identical)", i, v, want[i])
		}
	}

	// The embedder's own route still works next to the store's.
	resp, err = http.Get(srv.URL + "/custom")
	if err != nil {
		t.Fatal(err)
	}
	custom, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(custom) != "embedder route" {
		t.Fatalf("custom route: %q", custom)
	}

	// The facade's hardened validation: inverted ranges error with
	// ErrInvalidRange instead of returning silent empties.
	if _, err := store.Query("room/temp", 500, 100); !errors.Is(err, ErrInvalidRange) {
		t.Fatalf("inverted Query: %v", err)
	}
	if _, err := store.QueryAgg("room/temp", 500, 100, 10, AggMean); !errors.Is(err, ErrInvalidRange) {
		t.Fatalf("inverted QueryAgg: %v", err)
	}
	if _, err := store.Cursor("room/temp", 500, 100); !errors.Is(err, ErrInvalidRange) {
		t.Fatalf("inverted Cursor: %v", err)
	}
}

func jsonNum(v float64) string {
	b, _ := json.Marshal(v)
	return string(b)
}

func post(t *testing.T, url, body string) {
	t.Helper()
	resp, err := http.Post(url, "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST %s: %d %s", url, resp.StatusCode, msg)
	}
}
