package cameo

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// TestStoreStreamingReadPath exercises the facade's streaming read
// surface end to end: Cursor chunks reassemble to exactly what Query
// returns, QueryInto appends into a caller buffer, QueryAgg matches
// folding the materialized range, Series is sorted, and the pushdown
// counters surface in StoreTotals.
func TestStoreStreamingReadPath(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenStoreOptions(dir, StoreOptions{
		Compression: Options{Lags: 24, Epsilon: 0.05},
		BlockSize:   512,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	n := 1500
	for _, name := range []string{"zeta", "alpha", "mid/way"} {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = 5 + 3*math.Sin(2*math.Pi*float64(i)/24) + 0.2*rng.NormFloat64()
		}
		if err := store.Append(name, xs...); err != nil {
			t.Fatal(err)
		}
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	store, err = OpenStore(dir, Options{Lags: 24, Epsilon: 0.05}, 512)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	// Series returns sorted names — a documented facade guarantee.
	names := store.Series()
	if !sort.StringsAreSorted(names) || len(names) != 3 {
		t.Fatalf("Series() = %v, want 3 sorted names", names)
	}

	want, err := store.Query("alpha", 100, 1200)
	if err != nil {
		t.Fatal(err)
	}
	var cur *StoreCursor
	if cur, err = store.Cursor("alpha", 100, 1200); err != nil {
		t.Fatal(err)
	}
	var streamed []float64
	for {
		chunk, ok := cur.Next()
		if !ok {
			break
		}
		streamed = append(streamed, chunk...)
	}
	if err := cur.Err(); err != nil {
		t.Fatal(err)
	}
	cur.Close()
	if len(streamed) != len(want) {
		t.Fatalf("cursor yielded %d samples, Query %d", len(streamed), len(want))
	}
	for i := range want {
		if streamed[i] != want[i] {
			t.Fatalf("cursor sample %d: %v, want %v", i, streamed[i], want[i])
		}
	}

	buf := make([]float64, 0, 2048)
	into, err := store.QueryInto("alpha", 100, 1200, buf)
	if err != nil {
		t.Fatal(err)
	}
	if &into[0] != &buf[:1][0] {
		t.Fatal("QueryInto did not reuse the caller's buffer")
	}
	for i := range want {
		if into[i] != want[i] {
			t.Fatalf("QueryInto sample %d: %v, want %v", i, into[i], want[i])
		}
	}

	hourly, err := store.QueryAgg("alpha", 0, n, 60, AggMean)
	if err != nil {
		t.Fatal(err)
	}
	if len(hourly) != n/60 {
		t.Fatalf("QueryAgg returned %d windows, want %d", len(hourly), n/60)
	}
	full, err := store.Query("alpha", 0, n)
	if err != nil {
		t.Fatal(err)
	}
	for w := range hourly {
		ref := AggMean.Apply(full[w*60 : (w+1)*60])
		if math.Abs(hourly[w]-ref) > 1e-9*(math.Abs(ref)+1) {
			t.Fatalf("window %d: %v, want %v", w, hourly[w], ref)
		}
	}

	totals := store.Stats()
	if totals.RangeDecodes == 0 {
		t.Fatalf("StoreTotals.RangeDecodes = 0 after cold partial queries: %+v", totals)
	}
	if totals.AggPushdowns == 0 {
		t.Fatalf("StoreTotals.AggPushdowns = 0 after QueryAgg: %+v", totals)
	}
}

// TestDecodeBlockRangeAndAgg exercises the standalone block helpers the
// CLI's range/aggregate query modes use.
func TestDecodeBlockRangeAndAgg(t *testing.T) {
	xs := make([]float64, 300)
	for i := range xs {
		xs[i] = 2 + float64(i%25)
	}
	blk, err := EncodeBlock(CodecSwing(0.001), xs)
	if err != nil {
		t.Fatal(err)
	}
	full, _, err := DecodeBlock(blk)
	if err != nil {
		t.Fatal(err)
	}
	part, hdr, err := DecodeBlockRange(blk, 40, 90)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.N != 300 || len(part) != 50 {
		t.Fatalf("range decode: N=%d len=%d", hdr.N, len(part))
	}
	for i, v := range part {
		if v != full[40+i] {
			t.Fatalf("range sample %d: %v, want %v", i, v, full[40+i])
		}
	}
	agg, _, err := DecodeBlockAgg(blk, 40, 90)
	if err != nil {
		t.Fatal(err)
	}
	ref := RangeAgg{Min: math.Inf(1), Max: math.Inf(-1)}
	ref.Add(full[40:90])
	if agg.Count != 50 || agg.Min != ref.Min || agg.Max != ref.Max {
		t.Fatalf("agg = %+v, ref %+v", agg, ref)
	}
	if math.Abs(agg.Sum-ref.Sum) > 1e-9*(math.Abs(ref.Sum)+1) {
		t.Fatalf("agg sum %v, want %v", agg.Sum, ref.Sum)
	}
	// Clamped and empty ranges.
	if vals, _, err := DecodeBlockRange(blk, -10, 5); err != nil || len(vals) != 5 {
		t.Fatalf("clamped range: %d values, %v", len(vals), err)
	}
	if vals, _, err := DecodeBlockRange(blk, 200, 100); err != nil || vals != nil {
		t.Fatalf("empty range: %v, %v", vals, err)
	}

	// The one-pass windowed form agrees with per-window DecodeBlockAgg.
	aggs, _, err := DecodeBlockWindowAggs(blk, 10, 300, 70)
	if err != nil {
		t.Fatal(err)
	}
	if len(aggs) != 5 { // ceil(290/70)
		t.Fatalf("windowed aggs: %d windows, want 5", len(aggs))
	}
	for i, got := range aggs {
		lo := 10 + i*70
		want, _, err := DecodeBlockAgg(blk, lo, min(lo+70, 300))
		if err != nil {
			t.Fatal(err)
		}
		if got.Count != want.Count || got.Min != want.Min || got.Max != want.Max ||
			math.Abs(got.Sum-want.Sum) > 1e-9*(math.Abs(want.Sum)+1) {
			t.Fatalf("window %d: %+v, want %+v", i, got, want)
		}
	}
	if _, _, err := DecodeBlockWindowAggs(blk, 0, 300, 0); err == nil {
		t.Fatal("windowed aggs accepted step 0")
	}
	if aggs, _, err := DecodeBlockWindowAggs(blk, 200, 100, 10); err != nil || aggs != nil {
		t.Fatalf("empty windowed range: %v, %v", aggs, err)
	}
}
