package cameo

import (
	"repro/internal/lossless"
	"repro/internal/lossy"
	"repro/internal/simplify"
)

// SimplifyOptions configures an ACF-constrained line-simplification
// baseline run (VW, Turning Points, PIP, RDP).
type SimplifyOptions = simplify.Options

// SimplifyResult reports a baseline simplification outcome.
type SimplifyResult = simplify.Result

// ErrBoundExceeded is returned by baselines that cannot satisfy the
// requested ACF bound at all (e.g. Turning Points' initial phase).
var ErrBoundExceeded = simplify.ErrBoundExceeded

// TPVariant selects the Turning Points evaluation function.
type TPVariant = simplify.TPVariant

// Turning Points variants.
const (
	TPSum = simplify.TPSum // sum of absolute value differences (TPs)
	TPMae = simplify.TPMae // mean absolute gap error (TPm)
)

// PIPVariant selects the PIP importance (distance) function.
type PIPVariant = simplify.PIPVariant

// PIP variants.
const (
	PIPVertical      = simplify.PIPVertical
	PIPEuclidean     = simplify.PIPEuclidean
	PIPPerpendicular = simplify.PIPPerpendicular
)

// VW runs the ACF-constrained Visvalingam-Whyatt baseline.
func VW(xs []float64, opt SimplifyOptions) (*SimplifyResult, error) {
	return simplify.VW(xs, opt)
}

// TurningPoints runs the ACF-constrained Turning Points baseline.
func TurningPoints(xs []float64, v TPVariant, opt SimplifyOptions) (*SimplifyResult, error) {
	return simplify.TurningPoints(xs, v, opt)
}

// PIP runs the ACF-constrained Perceptually Important Points baseline.
func PIP(xs []float64, v PIPVariant, opt SimplifyOptions) (*SimplifyResult, error) {
	return simplify.PIP(xs, v, opt)
}

// RDP runs the ACF-constrained Ramer-Douglas-Peucker baseline.
func RDP(xs []float64, opt SimplifyOptions) (*SimplifyResult, error) {
	return simplify.RDP(xs, opt)
}

// LossyCompressed is a decodable compact representation produced by the
// functional-approximation and transform baselines.
type LossyCompressed = lossy.Compressed

// PMC compresses with Poor Man's Compression (constant segments, midrange
// variant) under a per-value absolute error bound.
func PMC(xs []float64, errBound float64) *LossyCompressed { return lossy.PMC(xs, errBound) }

// Swing compresses with the Swing filter (connected linear segments) under
// a per-value absolute error bound.
func Swing(xs []float64, errBound float64) *LossyCompressed { return lossy.Swing(xs, errBound) }

// SimPiece compresses with Sim-Piece (quantized-intercept PLA with merged
// slopes) under a per-value absolute error bound.
func SimPiece(xs []float64, errBound float64) *LossyCompressed { return lossy.SimPiece(xs, errBound) }

// FFTTopK compresses by keeping the k largest half-spectrum FFT
// coefficients.
func FFTTopK(xs []float64, k int) *LossyCompressed { return lossy.FFTTopK(xs, k) }

// LosslessEncoded is a bitstream produced by the lossless codecs.
type LosslessEncoded = lossless.Encoded

// Gorilla compresses losslessly with the Gorilla XOR codec.
func Gorilla(xs []float64) *LosslessEncoded { return lossless.Gorilla(xs) }

// Chimp compresses losslessly with the Chimp XOR codec.
func Chimp(xs []float64) *LosslessEncoded { return lossless.Chimp(xs) }

// Elf compresses losslessly with the erase-based Elf-style codec, which
// excels on values that are short decimals (typical sensor readings).
func Elf(xs []float64) *LosslessEncoded { return lossless.Elf(xs) }
