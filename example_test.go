package cameo_test

import (
	"fmt"
	"math"

	cameo "repro"
)

// sine480 is a deterministic noiseless daily cycle used by the examples.
func sine480() []float64 {
	xs := make([]float64, 480)
	for i := range xs {
		xs[i] = 20 + 8*math.Sin(2*math.Pi*float64(i)/24)
	}
	return xs
}

// The basic workflow: bound the ACF deviation, maximize compression.
func ExampleCompress() {
	res, err := cameo.Compress(sine480(), cameo.Options{Lags: 24, Epsilon: 0.01})
	if err != nil {
		panic(err)
	}
	fmt.Printf("retained %d of 480 points, deviation under bound: %v\n",
		res.Compressed.Len(), res.Deviation <= 0.01)
	// Output: retained 74 of 480 points, deviation under bound: true
}

// Compression-centric mode (Definition 3): hit a ratio, observe the
// deviation.
func ExampleCompress_targetRatio() {
	res, err := cameo.Compress(sine480(), cameo.Options{Lags: 24, TargetRatio: 10})
	if err != nil {
		panic(err)
	}
	fmt.Printf("CR %.0fx with %d points\n", res.CompressionRatio(), res.Compressed.Len())
	// Output: CR 10x with 48 points
}

// Preserving the ACF of hourly means of minutely data (Definition 2).
func ExampleCompress_onAggregates() {
	minutely := make([]float64, 4*1440) // four days, 1-minute samples
	for i := range minutely {
		minutely[i] = 50 + 10*math.Sin(2*math.Pi*float64(i)/1440)
	}
	res, err := cameo.Compress(minutely, cameo.Options{
		Lags: 24, Epsilon: 0.01, AggWindow: 60, AggFunc: cameo.AggMean,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("bounded the hourly ACF: %v\n", res.Deviation <= 0.01)
	// Output: bounded the hourly ACF: true
}

// Verifying a result's guarantee independently.
func ExampleDeviation() {
	xs := sine480()
	opt := cameo.Options{Lags: 24, Epsilon: 0.02}
	res, _ := cameo.Compress(xs, opt)
	dev, err := cameo.Deviation(xs, res.Compressed, opt)
	if err != nil {
		panic(err)
	}
	fmt.Printf("re-verified: %v\n", dev <= 0.02)
	// Output: re-verified: true
}

// Reconstructing the dense series from the retained points.
func ExampleIrregular_Decompress() {
	xs := sine480()
	res, _ := cameo.Compress(xs, cameo.Options{Lags: 24, Epsilon: 0.01})
	recon := res.Compressed.Decompress()
	fmt.Printf("lengths match: %v; endpoints exact: %v\n",
		len(recon) == len(xs), recon[0] == xs[0] && recon[479] == xs[479])
	// Output: lengths match: true; endpoints exact: true
}

// Round-tripping the compact binary encoding.
func ExampleDecodeIrregular() {
	res, _ := cameo.Compress(sine480(), cameo.Options{Lags: 24, Epsilon: 0.01})
	data := res.Compressed.Encode()
	back, err := cameo.DecodeIrregular(data)
	if err != nil {
		panic(err)
	}
	fmt.Printf("points preserved: %v\n", back.Len() == res.Compressed.Len())
	// Output: points preserved: true
}

// Computing the statistic CAMEO preserves.
func ExampleACF() {
	acf := cameo.ACF(sine480(), 24)
	fmt.Printf("lag-24 autocorrelation of a daily cycle: %.2f\n", acf[23])
	// Output: lag-24 autocorrelation of a daily cycle: 1.00
}
