// Command cameod serves a CAMEO store over HTTP: a standalone time-series
// daemon with batched ingest, streaming range queries, and downsampled
// aggregate queries riding the store's codec pushdown.
//
//	cameod -addr :9090 -dir ./data -codec cameo -lags 24 -eps 0.01
//
// Endpoints (see the README's Serving section for curl examples):
//
//	POST   /api/v1/write      "series value" / "series ts value" lines, or
//	                          a JSON {"series":[{"name":...,"values":[...]}]}
//	                          batch; points are grouped per series so one
//	                          request costs one Append per series
//	GET    /api/v1/query      ?series=&from=&to=&format=ndjson|csv — the
//	                          range streams chunk-by-chunk off a cursor
//	GET    /api/v1/query_agg  ?series=&from=&to=&step=&aggfn= — one value
//	                          per step-sample window
//	GET    /api/v1/series     sorted series listing
//	DELETE /api/v1/series     ?series= — drop one series and its rollup tiers
//	GET    /healthz, /statusz liveness; every metric family as flat JSON
//	GET    /metrics           Prometheus text exposition, same registry
//	GET    /debug/traces      ring of recent per-request stage timings
//
// Ingest is bounded two ways: -max-request-bytes caps one body (413
// beyond) and -max-inflight-bytes caps the bytes of all write requests
// in flight at once (429 + Retry-After beyond — backpressure, not OOM).
//
// Storage lifecycle: -retention and -retain-bytes bound the store by age
// and size, -compact-min-fill merges under-filled blocks, and -rollups
// materializes downsampled tiers that query_agg answers transparently.
// All of it runs on the background maintenance pass -maintain-interval
// enables; leave it 0 to keep every sample forever.
//
// Observability: -access-log emits one JSON line per request,
// -slow-query-threshold/-slow-query-sample turn on the sampled
// slow-query log, and -pprof-addr serves net/http/pprof on a separate
// listener (keep it loopback-only — profiles leak series names).
//
// On SIGINT/SIGTERM the daemon drains in-flight requests (bounded by
// -drain-timeout), then flushes and closes the store, so acknowledged
// writes are durable before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	cameo "repro"
)

func main() {
	var (
		addr     = flag.String("addr", ":9090", "listen address")
		dir      = flag.String("dir", "cameod-data", "store directory (created if absent)")
		codec    = flag.String("codec", "cameo", "block codec for new blocks ("+strings.Join(cameo.CodecNames(), ", ")+")")
		lags     = flag.Int("lags", 24, "ACF lags the cameo codec preserves")
		eps      = flag.Float64("eps", 0.01, "max ACF deviation for the cameo codec")
		block    = flag.Int("block", 4096, "samples per compressed block")
		shards   = flag.Int("shards", 0, "series lock domains (0 = default 16)")
		workers  = flag.Int("workers", 0, "compression workers (0 = GOMAXPROCS, negative = synchronous)")
		cache    = flag.Int("cache", 0, "decoded-block cache capacity in blocks (0 = default 128, negative = off)")
		ckptIv   = flag.Int("checkpoint-interval", 0, "checkpoint spacing in samples for bit-stream codec sidecars (0 = codec default 128, negative = off)")
		readAhd  = flag.Int("readahead", 2, "cursor prefetch depth: cold blocks decoded ahead on the worker pool per query (0 = off, the right setting on single-core hosts)")
		qFanout  = flag.Int("query-fanout", 0, "concurrent per-series scans per multi-series query (0 = worker-pool width)")
		streamIn = flag.Bool("streaming", false, "amortize block compression across appends (bounded ingest tail latency; cameo codec only)")
		maxAppLt = flag.Duration("max-append-latency", 0, "per-append compression work cap in streaming mode (0 = default 1ms)")
		maxReq   = flag.Int64("max-request-bytes", 0, "per-request body cap in bytes (0 = default 8 MiB)")
		maxInfl  = flag.Int64("max-inflight-bytes", 0, "total in-flight ingest bytes before 429 (0 = default 64 MiB)")
		ingestTO = flag.Duration("ingest-timeout", 0, "write body read bound, keeps slow uploads from pinning the ingest budget (0 = default 1m)")
		readHdr  = flag.Duration("read-header-timeout", 10*time.Second, "request header read timeout")
		idle     = flag.Duration("idle-timeout", 2*time.Minute, "keep-alive idle timeout")
		drain    = flag.Duration("drain-timeout", 15*time.Second, "graceful-shutdown drain bound")

		slowQ     = flag.Duration("slow-query-threshold", 0, "log query requests at or over this wall time as JSON lines (0 = off)")
		slowN     = flag.Int("slow-query-sample", 1, "log every Nth slow query")
		accessLog = flag.Bool("access-log", false, "emit one JSON line per request (trace ID, endpoint, status, bytes, duration)")
		pprofAddr = flag.String("pprof-addr", "", "serve net/http/pprof on this separate address (empty = off; keep it loopback-only)")

		retention  = flag.Int("retention", 0, "per-series age budget in samples, trimmed by maintenance (0 = keep everything)")
		retainB    = flag.Int64("retain-bytes", 0, "store-wide compressed-byte budget, oldest blocks deleted first (0 = no cap)")
		minFill    = flag.Float64("compact-min-fill", 0, "compaction threshold as a fraction of -block (0 = default 0.5, negative = off)")
		rollups    = flag.String("rollups", "", "rollup tiers as comma-separated step[/retention] window sizes, e.g. \"24,1440/8760\"")
		maintainIv = flag.Duration("maintain-interval", 0, "background maintenance period for compaction/rollups/retention (0 = off)")
	)
	flag.Parse()

	lc := lifecycleFlags{
		retention:      *retention,
		retainBytes:    *retainB,
		compactMinFill: *minFill,
		rollups:        *rollups,
		interval:       *maintainIv,
	}
	storeOpt, err := buildStoreOptions(*codec, *lags, *eps, *block, *shards, *workers, *cache, *ckptIv, readFlags{*readAhd, *qFanout}, ingestFlags{*streamIn, *maxAppLt}, lc)
	if err != nil {
		log.Fatalf("cameod: %v", err)
	}
	store, err := cameo.OpenStoreOptions(*dir, storeOpt)
	if err != nil {
		log.Fatalf("cameod: opening store %q: %v", *dir, err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *pprofAddr != "" {
		go servePprof(*pprofAddr)
	}

	srvOpt, err := buildServerOptions(serverFlags{
		maxRequestBytes:    *maxReq,
		maxInflightBytes:   *maxInfl,
		ingestTimeout:      *ingestTO,
		readHeaderTimeout:  *readHdr,
		idleTimeout:        *idle,
		drainTimeout:       *drain,
		slowQueryThreshold: *slowQ,
		slowQuerySample:    *slowN,
		accessLog:          *accessLog,
	})
	if err != nil {
		log.Fatalf("cameod: %v", err)
	}
	log.Printf("cameod: serving store %q (codec %s, block %d) on %s", *dir, *codec, *block, *addr)
	err = cameo.Serve(ctx, *addr, store, srvOpt)
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		// Still flush+close — acknowledged writes must not ride on a clean
		// drain — and surface a close failure rather than masking it with
		// the serve error alone.
		if cerr := store.Close(); cerr != nil {
			log.Printf("cameod: closing store: %v", cerr)
		}
		log.Fatalf("cameod: %v", err)
	}

	// Drained; make every acknowledged write durable, snapshot the final
	// counters (a closed DB must not be used), then close.
	log.Printf("cameod: draining done, flushing store")
	if err := store.Flush(); err != nil {
		log.Fatalf("cameod: flushing store: %v", err)
	}
	t := store.Stats()
	if err := store.Close(); err != nil {
		log.Fatalf("cameod: closing store: %v", err)
	}
	log.Printf("cameod: shut down cleanly (%d series, %d samples, %d B durable)",
		t.Series, t.Samples, t.DiskBytes)
}

// serverFlags groups the HTTP-layer knobs so buildServerOptions keeps a
// readable signature.
type serverFlags struct {
	maxRequestBytes    int64
	maxInflightBytes   int64
	ingestTimeout      time.Duration
	readHeaderTimeout  time.Duration
	idleTimeout        time.Duration
	drainTimeout       time.Duration
	slowQueryThreshold time.Duration
	slowQuerySample    int
	accessLog          bool
}

// buildServerOptions maps the daemon's HTTP flags onto ServerOptions.
// Nonsense knob values are rejected here with a flag-level message
// rather than being silently replaced by a server default.
func buildServerOptions(sf serverFlags) (cameo.ServerOptions, error) {
	if sf.slowQueryThreshold < 0 {
		return cameo.ServerOptions{}, fmt.Errorf("-slow-query-threshold must be non-negative, got %v", sf.slowQueryThreshold)
	}
	if sf.slowQuerySample < 1 {
		return cameo.ServerOptions{}, fmt.Errorf("-slow-query-sample must be at least 1, got %d", sf.slowQuerySample)
	}
	return cameo.ServerOptions{
		MaxRequestBytes:        sf.maxRequestBytes,
		MaxInflightIngestBytes: sf.maxInflightBytes,
		IngestTimeout:          sf.ingestTimeout,
		ReadHeaderTimeout:      sf.readHeaderTimeout,
		IdleTimeout:            sf.idleTimeout,
		DrainTimeout:           sf.drainTimeout,
		SlowQueryThreshold:     sf.slowQueryThreshold,
		SlowQuerySample:        sf.slowQuerySample,
		AccessLog:              sf.accessLog,
	}, nil
}

// servePprof exposes net/http/pprof on its own listener, never on the
// data-plane mux: profiles can reveal series names and timings, so the
// profiling surface binds separately (loopback in any sane deployment)
// and only when -pprof-addr asks for it.
func servePprof(addr string) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	log.Printf("cameod: serving pprof on %s", addr)
	if err := http.ListenAndServe(addr, mux); err != nil {
		log.Printf("cameod: pprof listener: %v", err)
	}
}

// readFlags groups the parallel-read knobs.
type readFlags struct {
	readAhead   int
	queryFanout int
}

// ingestFlags groups the streaming-ingest knobs.
type ingestFlags struct {
	streaming        bool
	maxAppendLatency time.Duration
}

// lifecycleFlags groups the storage-lifecycle knobs so buildStoreOptions
// keeps a readable signature.
type lifecycleFlags struct {
	retention      int
	retainBytes    int64
	compactMinFill float64
	rollups        string
	interval       time.Duration
}

// buildStoreOptions maps the daemon flags onto StoreOptions: the cameo
// codec takes its compression knobs from -lags/-eps, every other codec
// uses its registry defaults (nil Codec selects cameo so that path keeps
// the store's own option validation), -checkpoint-interval sets the
// bit-stream checkpoint spacing (meaningful for gorilla/chimp/elf and the
// rollup tiers any codec's store writes), -streaming/-max-append-latency
// select amortized ingest (the store validates codec capability on open),
// -readahead/-query-fanout tune the parallel read path (rejected here
// when negative, so a typo'd flag fails fast with a flag-level message),
// and the lifecycle flags ride through verbatim (-rollups parses via
// parseRollups).
func buildStoreOptions(codecName string, lags int, eps float64, block, shards, workers, cache, ckptInterval int, rf readFlags, in ingestFlags, lc lifecycleFlags) (cameo.StoreOptions, error) {
	if rf.readAhead < 0 {
		return cameo.StoreOptions{}, fmt.Errorf("-readahead must be non-negative, got %d", rf.readAhead)
	}
	if rf.queryFanout < 0 {
		return cameo.StoreOptions{}, fmt.Errorf("-query-fanout must be non-negative, got %d", rf.queryFanout)
	}
	opt := cameo.StoreOptions{
		Compression:        cameo.Options{Lags: lags, Epsilon: eps},
		BlockSize:          block,
		Shards:             shards,
		Workers:            workers,
		CacheBlocks:        cache,
		CheckpointInterval: ckptInterval,
		ReadAhead:          rf.readAhead,
		QueryFanout:        rf.queryFanout,
		Streaming:          in.streaming,
		MaxAppendLatency:   in.maxAppendLatency,
		Retention:          lc.retention,
		RetainBytes:        lc.retainBytes,
		CompactMinFill:     lc.compactMinFill,
		LifecycleInterval:  lc.interval,
	}
	if codecName != "cameo" {
		c, err := cameo.CodecByName(codecName)
		if err != nil {
			return cameo.StoreOptions{}, fmt.Errorf("%w (have: %s)", err, strings.Join(cameo.CodecNames(), ", "))
		}
		opt.Codec = c
	}
	specs, err := parseRollups(lc.rollups)
	if err != nil {
		return cameo.StoreOptions{}, err
	}
	opt.Rollups = specs
	return opt, nil
}

// parseRollups parses the -rollups flag: a comma-separated list of tier
// window sizes in samples, each optionally bounded as "step/retention"
// (retention in rollup samples, i.e. windows). "24,1440/8760" declares an
// unbounded 24-sample tier and a 1440-sample tier keeping 8760 windows.
// Each tier materializes the full default aggregate set (mean, sum, min,
// max); the store validates steps (>= 2, unique) on open.
func parseRollups(s string) ([]cameo.RollupSpec, error) {
	if s == "" {
		return nil, nil
	}
	var specs []cameo.RollupSpec
	for _, field := range strings.Split(s, ",") {
		field = strings.TrimSpace(field)
		stepStr, retStr, bounded := strings.Cut(field, "/")
		step, err := strconv.Atoi(stepStr)
		if err != nil {
			return nil, fmt.Errorf("-rollups: bad step %q in %q", stepStr, field)
		}
		spec := cameo.RollupSpec{Step: step}
		if bounded {
			if spec.Retention, err = strconv.Atoi(retStr); err != nil {
				return nil, fmt.Errorf("-rollups: bad retention %q in %q", retStr, field)
			}
		}
		specs = append(specs, spec)
	}
	return specs, nil
}
