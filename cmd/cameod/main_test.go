package main

import (
	"testing"

	cameo "repro"
)

// TestBuildStoreOptions pins the flag→StoreOptions mapping: cameo rides
// the -lags/-eps knobs through the nil-Codec default path, other codecs
// resolve from the registry, and unknown names fail with the available
// set in the message.
func TestBuildStoreOptions(t *testing.T) {
	opt, err := buildStoreOptions("cameo", 24, 0.01, 4096, 4, 2, 64)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Codec != nil {
		t.Fatalf("cameo should use the store's default codec path, got %v", opt.Codec)
	}
	if opt.Compression.Lags != 24 || opt.Compression.Epsilon != 0.01 || opt.BlockSize != 4096 {
		t.Fatalf("compression knobs not mapped: %+v", opt)
	}

	opt, err = buildStoreOptions("gorilla", 24, 0.01, 1024, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Codec == nil || opt.Codec.Name() != "gorilla" {
		t.Fatalf("gorilla codec not resolved: %+v", opt.Codec)
	}

	if _, err := buildStoreOptions("zstd", 24, 0.01, 1024, 0, 0, 0); err == nil {
		t.Fatal("unknown codec accepted")
	}

	// The mapped options must actually open a store (catches knob combos
	// the engine rejects).
	store, err := cameo.OpenStoreOptions(t.TempDir(), opt)
	if err != nil {
		t.Fatalf("mapped options do not open a store: %v", err)
	}
	store.Close()
}
