package main

import (
	"testing"
	"time"

	cameo "repro"
)

// TestBuildStoreOptions pins the flag→StoreOptions mapping: cameo rides
// the -lags/-eps knobs through the nil-Codec default path, other codecs
// resolve from the registry, unknown names fail with the available set in
// the message, and the lifecycle flags land verbatim.
func TestBuildStoreOptions(t *testing.T) {
	opt, err := buildStoreOptions("cameo", 24, 0.01, 4096, 4, 2, 64, 0, readFlags{}, ingestFlags{}, lifecycleFlags{})
	if err != nil {
		t.Fatal(err)
	}
	if opt.Codec != nil {
		t.Fatalf("cameo should use the store's default codec path, got %v", opt.Codec)
	}
	if opt.Compression.Lags != 24 || opt.Compression.Epsilon != 0.01 || opt.BlockSize != 4096 {
		t.Fatalf("compression knobs not mapped: %+v", opt)
	}
	if opt.Retention != 0 || opt.RetainBytes != 0 || opt.Rollups != nil || opt.LifecycleInterval != 0 {
		t.Fatalf("zero lifecycle flags should map to a disabled lifecycle: %+v", opt)
	}

	opt, err = buildStoreOptions("gorilla", 24, 0.01, 1024, 0, 0, 0, 32, readFlags{}, ingestFlags{}, lifecycleFlags{})
	if err != nil {
		t.Fatal(err)
	}
	if opt.Codec == nil || opt.Codec.Name() != "gorilla" {
		t.Fatalf("gorilla codec not resolved: %+v", opt.Codec)
	}
	if opt.CheckpointInterval != 32 {
		t.Fatalf("-checkpoint-interval not mapped: %+v", opt)
	}

	if _, err := buildStoreOptions("zstd", 24, 0.01, 1024, 0, 0, 0, 0, readFlags{}, ingestFlags{}, lifecycleFlags{}); err == nil {
		t.Fatal("unknown codec accepted")
	}

	lc := lifecycleFlags{
		retention:      100000,
		retainBytes:    1 << 30,
		compactMinFill: 0.75,
		rollups:        "24, 1440/8760",
		interval:       time.Minute,
	}
	opt, err = buildStoreOptions("cameo", 24, 0.01, 4096, 0, 0, 0, 0, readFlags{}, ingestFlags{}, lc)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Retention != 100000 || opt.RetainBytes != 1<<30 || opt.CompactMinFill != 0.75 || opt.LifecycleInterval != time.Minute {
		t.Fatalf("lifecycle knobs not mapped: %+v", opt)
	}
	if len(opt.Rollups) != 2 ||
		opt.Rollups[0].Step != 24 || opt.Rollups[0].Retention != 0 ||
		opt.Rollups[1].Step != 1440 || opt.Rollups[1].Retention != 8760 {
		t.Fatalf("rollups not parsed: %+v", opt.Rollups)
	}

	// The mapped options must actually open a store (catches knob combos
	// the engine rejects).
	store, err := cameo.OpenStoreOptions(t.TempDir(), opt)
	if err != nil {
		t.Fatalf("mapped options do not open a store: %v", err)
	}
	store.Close()

	// -streaming/-max-append-latency map onto the streaming-ingest knobs,
	// and the mapped options open a streaming store.
	opt, err = buildStoreOptions("cameo", 24, 0.01, 4096, 0, 0, 0, 0,
		readFlags{}, ingestFlags{streaming: true, maxAppendLatency: 250 * time.Microsecond}, lifecycleFlags{})
	if err != nil {
		t.Fatal(err)
	}
	if !opt.Streaming || opt.MaxAppendLatency != 250*time.Microsecond {
		t.Fatalf("streaming knobs not mapped: %+v", opt)
	}
	store, err = cameo.OpenStoreOptions(t.TempDir(), opt)
	if err != nil {
		t.Fatalf("mapped streaming options do not open a store: %v", err)
	}
	store.Close()

	// -readahead/-query-fanout map onto the parallel-read knobs, and the
	// mapped options open a store.
	opt, err = buildStoreOptions("cameo", 24, 0.01, 4096, 0, 0, 0, 0,
		readFlags{readAhead: 4, queryFanout: 8}, ingestFlags{}, lifecycleFlags{})
	if err != nil {
		t.Fatal(err)
	}
	if opt.ReadAhead != 4 || opt.QueryFanout != 8 {
		t.Fatalf("parallel-read knobs not mapped: %+v", opt)
	}
	store, err = cameo.OpenStoreOptions(t.TempDir(), opt)
	if err != nil {
		t.Fatalf("mapped parallel-read options do not open a store: %v", err)
	}
	store.Close()

	// Negative parallel-read knobs are rejected at the flag layer with a
	// flag-level message, before any store is opened.
	if _, err := buildStoreOptions("cameo", 24, 0.01, 4096, 0, 0, 0, 0,
		readFlags{readAhead: -1}, ingestFlags{}, lifecycleFlags{}); err == nil {
		t.Fatal("negative -readahead accepted")
	}
	if _, err := buildStoreOptions("cameo", 24, 0.01, 4096, 0, 0, 0, 0,
		readFlags{queryFanout: -2}, ingestFlags{}, lifecycleFlags{}); err == nil {
		t.Fatal("negative -query-fanout accepted")
	}

	// -streaming with a codec that has no streaming encode path is the
	// engine's error to report, surfaced at open.
	opt, err = buildStoreOptions("gorilla", 24, 0.01, 1024, 0, 0, 0, 0,
		readFlags{}, ingestFlags{streaming: true}, lifecycleFlags{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cameo.OpenStoreOptions(t.TempDir(), opt); err == nil {
		t.Fatal("streaming store opened under a non-streaming codec")
	}
}

func TestParseRollupsRejectsGarbage(t *testing.T) {
	for _, bad := range []string{"abc", "24,", "24/x", "/5", "24//5"} {
		if specs, err := parseRollups(bad); err == nil {
			t.Fatalf("parseRollups(%q) accepted: %+v", bad, specs)
		}
	}
	// Steps the store rejects (below 2, duplicates) fail at open, not in
	// the flag parser.
	specs, err := parseRollups("1")
	if err != nil {
		t.Fatal(err)
	}
	opt := cameo.StoreOptions{
		Compression: cameo.Options{Lags: 24, Epsilon: 0.01},
		Rollups:     specs,
	}
	if _, err := cameo.OpenStoreOptions(t.TempDir(), opt); err == nil {
		t.Fatal("store accepted a step-1 rollup")
	}
}

// TestBuildServerOptions pins the flag→ServerOptions mapping for the
// observability knobs: the slow-query-log and access-log flags land
// verbatim, and nonsense values fail at the flag layer before a
// listener ever binds.
func TestBuildServerOptions(t *testing.T) {
	opt, err := buildServerOptions(serverFlags{
		maxRequestBytes:    1 << 20,
		maxInflightBytes:   8 << 20,
		ingestTimeout:      30 * time.Second,
		readHeaderTimeout:  5 * time.Second,
		idleTimeout:        time.Minute,
		drainTimeout:       10 * time.Second,
		slowQueryThreshold: 250 * time.Millisecond,
		slowQuerySample:    10,
		accessLog:          true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if opt.MaxRequestBytes != 1<<20 || opt.MaxInflightIngestBytes != 8<<20 ||
		opt.IngestTimeout != 30*time.Second || opt.ReadHeaderTimeout != 5*time.Second ||
		opt.IdleTimeout != time.Minute || opt.DrainTimeout != 10*time.Second {
		t.Fatalf("admission/timeout knobs not mapped: %+v", opt)
	}
	if opt.SlowQueryThreshold != 250*time.Millisecond || opt.SlowQuerySample != 10 || !opt.AccessLog {
		t.Fatalf("observability knobs not mapped: %+v", opt)
	}

	// The zero flag set maps cleanly (the server applies its defaults).
	if _, err := buildServerOptions(serverFlags{slowQuerySample: 1}); err != nil {
		t.Fatalf("default flags rejected: %v", err)
	}

	if _, err := buildServerOptions(serverFlags{slowQuerySample: 1, slowQueryThreshold: -time.Second}); err == nil {
		t.Fatal("negative -slow-query-threshold accepted")
	}
	if _, err := buildServerOptions(serverFlags{slowQuerySample: 0}); err == nil {
		t.Fatal("zero -slow-query-sample accepted")
	}
}
