// Command bench runs the repository's core-compression and storage-engine
// benchmarks in-process (via testing.Benchmark, with allocation counting
// always on, as with -benchmem) and writes a machine-readable JSON artifact.
// CI invokes it on every run and uploads the result, and perf PRs commit a
// before/after snapshot (BENCH_PR3.json through BENCH_PR10.json) so the
// performance trajectory of the hot paths — impact evaluation, block
// compression, store ingest (including the append-latency percentile pair
// store/append-latency-batch-sync vs store/append-latency-streaming, which
// times every call individually), materializing and streaming queries, aggregate
// pushdown, checkpointed cold bit-stream reads (store/*-bitstream-* and
// store/agg-rollup-cold, each paired with a sidecar-less -replay baseline),
// storage lifecycle (compaction throughput, rollup-tier vs raw
// aggregate queries, post-retention reads), the HTTP serving path
// (server/ingest-*, server/query-*, measured with concurrent clients
// against an httptest server), and the parallel read path (the
// store/query-cold-prefetch-{off,on} readahead pair and the
// server/query-{serial-8,multi-8,multi-64} batch-query trio) — is tracked
// from PR 3 onward.
//
// Usage:
//
//	go run ./cmd/bench [-benchtime 1s|Nx] [-label name] [-out bench.json]
//	                   [-bench regexp] [-compare old.json] [-fail-on-regress]
//
// -out "-" writes to stdout; -bench restricts the run to matching
// benchmark names (handy for re-measuring a noisy pair). -compare diffs
// the run against a previously committed artifact and warns about
// benchmarks whose time/op regressed more than 30% — CI's bench-smoke
// job points it at the latest BENCH_PR*.json. By default the exit status
// is unchanged (shared runners are noisy); -fail-on-regress turns the
// warnings into an exit-1 gate for dedicated perf runners.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	cameo "repro"
	"repro/internal/acf"
)

type result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	MBPerSec    float64 `json:"mb_per_s,omitempty"`

	// Per-op latency percentiles and the blocks' compression ratio,
	// reported only by the store/append-latency-* pair (exact per-call
	// timings, not bucketed; see benchStoreAppendLatency).
	P50NsPerOp float64 `json:"p50_ns_per_op,omitempty"`
	P99NsPerOp float64 `json:"p99_ns_per_op,omitempty"`
	MaxNsPerOp float64 `json:"max_ns_per_op,omitempty"`
	Ratio      float64 `json:"compression_ratio,omitempty"`
}

type run struct {
	Label     string   `json:"label"`
	Go        string   `json:"go"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	CPUs      int      `json:"cpus"`
	Benchtime string   `json:"benchtime"`
	Results   []result `json:"results"`
}

func benchSeries(n, period int, noise float64) []float64 {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = 10 + 5*math.Sin(2*math.Pi*float64(i)/float64(period)) + noise*rng.NormFloat64()
	}
	return xs
}

func mustCompress(b *testing.B, xs []float64, opt cameo.Options) {
	b.Helper()
	if _, err := cameo.Compress(xs, opt); err != nil {
		b.Fatal(err)
	}
}

// benchmarks mirrors the tracked subset of the root bench_test.go suite —
// the two acceptance benchmarks of PR 3 (epsilon compression, store append)
// plus the knobs the performance model documents.
func benchmarks() []struct {
	name string
	fn   func(b *testing.B)
} {
	return []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"impact-eval/direct-48", func(b *testing.B) {
			// Steady-state hypothetical evaluation (the Alg. 1 inner loop):
			// must report 0 allocs/op.
			xs := benchSeries(10000, 48, 0.5)
			tr := acf.NewDirectTracker(xs, 48)
			sc := tr.NewScratch()
			deltas := []float64{1.5}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tr.Hypothetical(xs, 5000, deltas, sc)
			}
		}},
		{"compress/epsilon-10k-l48", func(b *testing.B) {
			xs := benchSeries(10000, 48, 0.5)
			opt := cameo.Options{Lags: 48, Epsilon: 0.01}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mustCompress(b, xs, opt)
			}
		}},
		{"compress/ratio-10k-l48", func(b *testing.B) {
			xs := benchSeries(10000, 48, 0.5)
			opt := cameo.Options{Lags: 48, TargetRatio: 10}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mustCompress(b, xs, opt)
			}
		}},
		{"compress/pacf-2k-l24", func(b *testing.B) {
			xs := benchSeries(2000, 24, 0.5)
			opt := cameo.Options{Lags: 24, Epsilon: 0.01, Statistic: cameo.StatPACF}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mustCompress(b, xs, opt)
			}
		}},
		{"compress/aggwindow-10k-k24", func(b *testing.B) {
			xs := benchSeries(10000, 240, 0.5)
			opt := cameo.Options{Lags: 10, Epsilon: 0.01, AggWindow: 24, AggFunc: cameo.AggMean}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mustCompress(b, xs, opt)
			}
		}},
		{"compress/lagsubset-full48-5k", func(b *testing.B) {
			xs := benchSeries(5000, 48, 0.5)
			opt := cameo.Options{Lags: 48, Epsilon: 0.01}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mustCompress(b, xs, opt)
			}
		}},
		{"compress/lagsubset-3of48-5k", func(b *testing.B) {
			xs := benchSeries(5000, 48, 0.5)
			opt := cameo.Options{Lags: 48, Epsilon: 0.01, LagSubset: []int{1, 24, 48}}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mustCompress(b, xs, opt)
			}
		}},
		{"store/append-sharded-async", func(b *testing.B) {
			benchStoreAppend(b, 16, 0)
		}},
		{"store/append-single-sync", func(b *testing.B) {
			benchStoreAppend(b, 1, -1)
		}},
		{"store/append-latency-batch-sync", func(b *testing.B) {
			benchStoreAppendLatency(b, false) // block cut compresses inline: the tail-latency spike
		}},
		{"store/append-latency-streaming", func(b *testing.B) {
			benchStoreAppendLatency(b, true) // compression amortized across appends
		}},
		{"store/query-cached", func(b *testing.B) {
			benchStoreQuery(b, 256)
		}},
		{"store/query-cold", func(b *testing.B) {
			benchStoreQuery(b, -1)
		}},
		{"store/cursor-cached", func(b *testing.B) {
			benchStoreCursor(b, 256)
		}},
		{"store/cursor-cold", func(b *testing.B) {
			benchStoreCursor(b, -1)
		}},
		{"store/query-cold-prefetch-off", func(b *testing.B) {
			benchStoreQueryPrefetch(b, 0) // sequential: each cold block read+decoded inline
		}},
		{"store/query-cold-prefetch-on", func(b *testing.B) {
			benchStoreQueryPrefetch(b, 2) // readahead 2: upcoming blocks decode on the pool
		}},
		{"store/agg-pushdown-cold", func(b *testing.B) {
			benchStoreAgg(b, nil) // CAMEO: windows answered from the segment form
		}},
		{"store/agg-fallback-cold", func(b *testing.B) {
			benchStoreAgg(b, cameo.CodecGorilla()) // bit-stream codec: dense fold
		}},
		{"store/compact-merge", func(b *testing.B) {
			benchStoreCompact(b)
		}},
		{"store/agg-raw-month", func(b *testing.B) {
			benchStoreAggMonth(b, false) // pushdown over every raw block
		}},
		{"store/agg-rollup-month", func(b *testing.B) {
			benchStoreAggMonth(b, true) // answered from the materialized tier
		}},
		{"store/query-cold-post-retention", func(b *testing.B) {
			benchStoreQueryPostRetention(b)
		}},
		{"store/query-cold-bitstream-512", func(b *testing.B) {
			benchStoreQueryBitstream(b, 512, 0) // checkpointed seeks (default k=128)
		}},
		{"store/query-cold-bitstream-512-replay", func(b *testing.B) {
			benchStoreQueryBitstream(b, 512, -1) // sidecar-less: full-block replay
		}},
		{"store/query-cold-bitstream-4k", func(b *testing.B) {
			benchStoreQueryBitstream(b, 4096, 0)
		}},
		{"store/agg-rollup-cold", func(b *testing.B) {
			benchStoreAggRollupCold(b, 0) // tier blocks seek via their sidecars
		}},
		{"store/agg-rollup-cold-replay", func(b *testing.B) {
			benchStoreAggRollupCold(b, -1) // sidecar-less tier: dense fold
		}},
		{"server/ingest-lines", func(b *testing.B) {
			benchServerIngest(b, false)
		}},
		{"server/ingest-json", func(b *testing.B) {
			benchServerIngest(b, true)
		}},
		{"server/query-stream-cached", func(b *testing.B) {
			benchServerQuery(b, 256, 512)
		}},
		{"server/query-stream-cold-512", func(b *testing.B) {
			benchServerQuery(b, -1, 512)
		}},
		{"server/query-stream-cold-4k", func(b *testing.B) {
			// 8x the range of cold-512: B/op must grow far less than 8x —
			// the handler streams O(chunk), not O(range).
			benchServerQuery(b, -1, 4096)
		}},
		{"server/query-agg-cold", func(b *testing.B) {
			benchServerAgg(b)
		}},
		{"server/query-serial-8", func(b *testing.B) {
			benchServerMultiQuery(b, 8, true) // 8 series as 8 sequential GETs — the baseline
		}},
		{"server/query-multi-8", func(b *testing.B) {
			benchServerMultiQuery(b, 8, false) // same 8 series as one POST batch
		}},
		{"server/query-multi-64", func(b *testing.B) {
			benchServerMultiQuery(b, 64, false)
		}},
	}
}

// benchStoreQueryPrefetch is the readahead acceptance pair: one client
// scanning a cold 16-block series end to end through a cursor, cache off,
// with the worker pool available. At ra 0 every block's file read + decode
// happens inline between chunks; at ra 2 the next blocks resolve on the
// pool while the caller consumes, so on a multi-core host the scan
// overlaps I/O+decode with consumption (on one vCPU the pair should tie —
// prefetch only moves work).
func benchStoreQueryPrefetch(b *testing.B, ra int) {
	const perSeries = 16 * 2048
	opt := storeOptions(1, 0, -1)
	opt.ReadAhead = ra
	store, err := cameo.OpenStoreOptions(b.TempDir(), opt)
	if err != nil {
		b.Fatal(err)
	}
	if err := store.Append("s", benchSeries(perSeries, 48, 0.5)...); err != nil {
		b.Fatal(err)
	}
	if err := store.Flush(); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(perSeries * 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cur, err := store.Cursor("s", 0, perSeries)
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		for {
			chunk, ok := cur.Next()
			if !ok {
				break
			}
			n += len(chunk)
		}
		if err := cur.Err(); err != nil {
			b.Fatal(err)
		}
		cur.Close()
		if n != perSeries {
			b.Fatalf("cursor yielded %d samples", n)
		}
	}
	b.StopTimer()
	if err := store.Close(); err != nil {
		b.Fatal(err)
	}
}

// benchServerMultiQuery is the scatter-gather acceptance trio: a
// dashboard refreshing nSeries panels of 2048 cold samples each, either
// as sequential single-series GETs (serial, the round-trip-bound
// baseline) or as one POST /api/v1/query batch that the store fans out
// worker-pool-wide and streams back as NDJSON sections. The batch form
// pays one HTTP round-trip instead of nSeries and overlaps the
// per-series block decodes, so it must come in well under the serial
// form even on one core.
func benchServerMultiQuery(b *testing.B, nSeries int, serial bool) {
	const perSeries, rangeLen = 8192, 2048
	_, srv := benchHTTPServer(b, -1, nSeries, perSeries)
	names := make([]string, nSeries)
	for s := range names {
		names[s] = fmt.Sprintf("series-%02d", s)
	}
	body, err := json.Marshal(map[string]any{"series": names, "from": 0, "to": rangeLen})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(nSeries * rangeLen * 8))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if serial {
			for _, name := range names {
				resp, err := http.Get(fmt.Sprintf("%s/api/v1/query?series=%s&from=0&to=%d", srv.URL, name, rangeLen))
				if err != nil {
					b.Fatal(err)
				}
				n, _ := io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK || n == 0 {
					b.Fatalf("query: status %d, %d bytes", resp.StatusCode, n)
				}
			}
			continue
		}
		resp, err := http.Post(srv.URL+"/api/v1/query", "application/json", strings.NewReader(string(body)))
		if err != nil {
			b.Fatal(err)
		}
		n, _ := io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || n == 0 {
			b.Fatalf("batch query: status %d, %d bytes", resp.StatusCode, n)
		}
	}
}

// benchHTTPServer fronts a freshly filled store with an httptest server
// for the serving-path benchmarks: nSeries of perSeries samples each when
// prefilled, an empty store otherwise.
func benchHTTPServer(b *testing.B, cacheBlocks, nSeries, perSeries int) (*cameo.Store, *httptest.Server) {
	store, err := cameo.OpenStoreOptions(b.TempDir(), storeOptions(16, 0, cacheBlocks))
	if err != nil {
		b.Fatal(err)
	}
	for s := 0; s < nSeries; s++ {
		if err := store.Append(fmt.Sprintf("series-%02d", s), benchSeries(perSeries, 48, 0.5)...); err != nil {
			b.Fatal(err)
		}
	}
	if nSeries > 0 {
		if err := store.Flush(); err != nil {
			b.Fatal(err)
		}
	}
	srv := httptest.NewServer(cameo.NewHandler(store, cameo.ServerOptions{}))
	b.Cleanup(func() {
		srv.Close()
		if err := store.Close(); err != nil {
			b.Error(err)
		}
	})
	return store, srv
}

// benchServerIngest measures concurrent HTTP clients pushing 512-sample
// batches through POST /api/v1/write (newline or JSON form); throughput
// is raw sample bytes, as in store/append-*.
func benchServerIngest(b *testing.B, jsonForm bool) {
	_, srv := benchHTTPServer(b, -1, 0, 0)
	chunk := benchSeries(512, 48, 0.5)
	var id atomic.Int64
	b.SetBytes(int64(len(chunk) * 8))
	b.ReportAllocs()
	b.SetParallelism(8)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		name := fmt.Sprintf("series-%02d", id.Add(1))
		var sb strings.Builder
		ct := "text/plain"
		if jsonForm {
			ct = "application/json"
			sb.WriteString(`{"series":[{"name":"` + name + `","values":[`)
			for i, v := range chunk {
				if i > 0 {
					sb.WriteByte(',')
				}
				sb.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
			}
			sb.WriteString(`]}]}`)
		} else {
			for _, v := range chunk {
				sb.WriteString(name)
				sb.WriteByte(' ')
				sb.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
				sb.WriteByte('\n')
			}
		}
		body := sb.String()
		for pb.Next() {
			resp, err := http.Post(srv.URL+"/api/v1/write", ct, strings.NewReader(body))
			if err != nil {
				b.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Errorf("write: status %d", resp.StatusCode)
				return
			}
		}
	})
}

// benchServerQuery measures concurrent clients streaming rangeLen-sample
// NDJSON responses off GET /api/v1/query. The handler walks a cursor and
// encodes chunk by chunk, so per-request server allocations stay O(chunk)
// even when rangeLen spans multiple blocks (compare cold-512 vs cold-4k).
func benchServerQuery(b *testing.B, cacheBlocks, rangeLen int) {
	const nSeries, perSeries = 8, 8192
	_, srv := benchHTTPServer(b, cacheBlocks, nSeries, perSeries)
	var seed atomic.Int64
	b.SetBytes(int64(rangeLen * 8))
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(seed.Add(1)))
		for pb.Next() {
			s := rng.Intn(nSeries)
			from := rng.Intn(perSeries - rangeLen)
			resp, err := http.Get(fmt.Sprintf("%s/api/v1/query?series=series-%02d&from=%d&to=%d",
				srv.URL, s, from, from+rangeLen))
			if err != nil {
				b.Error(err)
				return
			}
			n, _ := io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK || n == 0 {
				b.Errorf("query: status %d, %d bytes", resp.StatusCode, n)
				return
			}
		}
	})
}

// benchServerAgg measures dashboard-style downsampling over HTTP: each
// request maps onto QueryAgg (64-sample windows over a 4096-sample
// range), riding the codec pushdown on the cold CAMEO store.
func benchServerAgg(b *testing.B) {
	const nSeries, perSeries = 8, 8192
	_, srv := benchHTTPServer(b, -1, nSeries, perSeries)
	var seed atomic.Int64
	b.SetBytes(4096 * 8)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(seed.Add(1)))
		for pb.Next() {
			s := rng.Intn(nSeries)
			from := rng.Intn(perSeries - 4096)
			resp, err := http.Get(fmt.Sprintf("%s/api/v1/query_agg?series=series-%02d&from=%d&to=%d&step=64",
				srv.URL, s, from, from+4096))
			if err != nil {
				b.Error(err)
				return
			}
			n, _ := io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK || n == 0 {
				b.Errorf("query_agg: status %d, %d bytes", resp.StatusCode, n)
				return
			}
		}
	})
}

// benchStoreCompact measures one full compaction pass: trickle ingest
// (timer off) leaves 32 quarter-filled blocks, and the timed Maintain
// merges them into 4 full ones — reading, merging, atomically republishing
// and deleting the sources. Throughput is raw sample bytes compacted.
func benchStoreCompact(b *testing.B) {
	const chunkLen, chunks = 512, 32 // quarter-filled against BlockSize 2048
	xs := benchSeries(chunkLen*chunks, 48, 0.5)
	opt := storeOptions(1, -1, -1)
	b.SetBytes(int64(chunkLen * chunks * 8))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		store, err := cameo.OpenStoreOptions(b.TempDir(), opt)
		if err != nil {
			b.Fatal(err)
		}
		for c := 0; c < chunks; c++ {
			if err := store.Append("s", xs[c*chunkLen:(c+1)*chunkLen]...); err != nil {
				b.Fatal(err)
			}
			if err := store.Flush(); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		if err := store.Maintain(); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if st, err := store.SeriesStats("s"); err != nil || st.Blocks != chunkLen*chunks/2048 {
			b.Fatalf("compaction left %d blocks (err %v)", st.Blocks, err)
		}
		if err := store.Close(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}

// benchStoreAggMonth measures a month-scale tier-aligned aggregate query
// on a cold store, the rollup acceptance pair: raw answers push down into
// all 32 compressed blocks, rollup answers read the materialized tier's
// single block instead — same windows, same values, far fewer bytes.
func benchStoreAggMonth(b *testing.B, rollup bool) {
	const perSeries = 32 * 2048
	opt := storeOptions(1, -1, -1)
	if rollup {
		opt.Rollups = []cameo.RollupSpec{{Step: 512}}
	}
	store, err := cameo.OpenStoreOptions(b.TempDir(), opt)
	if err != nil {
		b.Fatal(err)
	}
	if err := store.Append("s", benchSeries(perSeries, 48, 0.5)...); err != nil {
		b.Fatal(err)
	}
	if err := store.Flush(); err != nil {
		b.Fatal(err)
	}
	if rollup {
		if err := store.Maintain(); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(perSeries * 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vals, err := store.QueryAgg("s", 0, perSeries, 2048, cameo.AggMean)
		if err != nil {
			b.Fatal(err)
		}
		if len(vals) != perSeries/2048 {
			b.Fatalf("QueryAgg yielded %d windows", len(vals))
		}
	}
	b.StopTimer()
	if err := store.Close(); err != nil {
		b.Fatal(err)
	}
}

// benchStoreQueryPostRetention mirrors store/query-cold on a store whose
// oldest three quarters were trimmed by retention: random 512-sample reads
// land in the retained suffix and must cost the same as on an untrimmed
// store (the trim base only re-anchors the index).
func benchStoreQueryPostRetention(b *testing.B) {
	const perSeries, retained = 32768, 8192
	opt := storeOptions(1, -1, -1)
	opt.Retention = retained
	store, err := cameo.OpenStoreOptions(b.TempDir(), opt)
	if err != nil {
		b.Fatal(err)
	}
	if err := store.Append("s", benchSeries(perSeries, 48, 0.5)...); err != nil {
		b.Fatal(err)
	}
	if err := store.Flush(); err != nil {
		b.Fatal(err)
	}
	if err := store.Maintain(); err != nil {
		b.Fatal(err)
	}
	st, err := store.SeriesStats("s")
	if err != nil || st.Samples != retained {
		b.Fatalf("retention left %d samples (err %v), want %d", st.Samples, err, retained)
	}
	base := st.FirstIndex
	var seed atomic.Int64
	b.SetBytes(512 * 8)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(seed.Add(1)))
		for pb.Next() {
			from := base + rng.Intn(retained-512)
			if _, err := store.Query("s", from, from+512); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	if err := store.Close(); err != nil {
		b.Fatal(err)
	}
}

// benchStoreQueryBitstream mirrors store/query-cold on a gorilla-coded
// store with 4096-sample blocks: random rangeLen-sample reads, cache off,
// so every read decodes compressed bit stream. With checkpoints (the
// default, k=128) a cold block decodes O(overlap + k) samples via its
// sidecar; ckptInterval -1 writes sidecar-less v1 blocks and every read
// replays whole blocks from the front — the before/after pair for the
// checkpointed seek path.
func benchStoreQueryBitstream(b *testing.B, rangeLen, ckptInterval int) {
	const nSeries, perSeries = 8, 16384
	opt := storeOptions(16, 0, -1)
	opt.Codec = cameo.CodecGorilla()
	opt.BlockSize = 4096
	opt.CheckpointInterval = ckptInterval
	store, err := cameo.OpenStoreOptions(b.TempDir(), opt)
	if err != nil {
		b.Fatal(err)
	}
	for s := 0; s < nSeries; s++ {
		if err := store.Append(fmt.Sprintf("series-%02d", s), benchSeries(perSeries, 48, 0.5)...); err != nil {
			b.Fatal(err)
		}
	}
	if err := store.Flush(); err != nil {
		b.Fatal(err)
	}
	var seed atomic.Int64
	b.SetBytes(int64(rangeLen * 8))
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(seed.Add(1)))
		for pb.Next() {
			s := rng.Intn(nSeries)
			from := rng.Intn(perSeries - rangeLen)
			if _, err := store.Query(fmt.Sprintf("series-%02d", s), from, from+rangeLen); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	if st := store.Stats(); (ckptInterval >= 0) != (st.CheckpointSeeks > 0) {
		b.Fatalf("checkpoint path mismatch (interval %d): %d seeks", ckptInterval, st.CheckpointSeeks)
	}
	if err := store.Close(); err != nil {
		b.Fatal(err)
	}
}

// benchStoreAggRollupCold measures dashboard zoom-in on a materialized
// rollup tier with the cache off: random 8192-sample windows aggregated
// at step 64 are answered by the Step-8 tier, whose gorilla blocks are
// re-read cold on every op. With checkpoints the tier read seeks to just
// the queried windows; ckptInterval -1 leaves the tier sidecar-less and
// each overlapped tier block replays densely from the front.
func benchStoreAggRollupCold(b *testing.B, ckptInterval int) {
	const perSeries = 32 * 2048
	const rangeLen, step = 8192, 64
	opt := storeOptions(1, -1, -1)
	opt.CheckpointInterval = ckptInterval
	opt.Rollups = []cameo.RollupSpec{{Step: 8}}
	store, err := cameo.OpenStoreOptions(b.TempDir(), opt)
	if err != nil {
		b.Fatal(err)
	}
	if err := store.Append("s", benchSeries(perSeries, 48, 0.5)...); err != nil {
		b.Fatal(err)
	}
	if err := store.Flush(); err != nil {
		b.Fatal(err)
	}
	if err := store.Maintain(); err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	b.SetBytes(rangeLen * 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		from := rng.Intn((perSeries-rangeLen)/step+1) * step
		vals, err := store.QueryAgg("s", from, from+rangeLen, step, cameo.AggMean)
		if err != nil {
			b.Fatal(err)
		}
		if len(vals) != rangeLen/step {
			b.Fatalf("QueryAgg yielded %d windows", len(vals))
		}
	}
	b.StopTimer()
	if st := store.Stats(); (ckptInterval >= 0) != (st.CheckpointSeeks > 0) {
		b.Fatalf("checkpoint path mismatch (interval %d): %d seeks", ckptInterval, st.CheckpointSeeks)
	}
	if err := store.Close(); err != nil {
		b.Fatal(err)
	}
}

func storeOptions(shards, workers, cacheBlocks int) cameo.StoreOptions {
	return cameo.StoreOptions{
		Compression: cameo.Options{Lags: 24, Epsilon: 0.05},
		BlockSize:   2048,
		Shards:      shards,
		Workers:     workers,
		CacheBlocks: cacheBlocks,
	}
}

// benchStoreAppendLatency measures the per-call latency distribution of
// Append under steady 64-sample-chunk ingest on one series — the PR 8
// acceptance pair. Every op is timed individually and the sorted set is
// reported as p50/p99/max metrics: with 2048-sample blocks a cut lands on
// 1 in 32 appends, so the block-cut cost sits squarely inside the p99. The
// batch-sync run compresses each cut inline (the spike the streaming mode
// amortizes); the streaming run spreads the same work across the appends
// feeding the block, so its p99 must sit far below the batch one while the
// blocks themselves stay byte-identical (the ratio metric pins that).
func benchStoreAppendLatency(b *testing.B, streaming bool) {
	const chunkLen = 64
	chunk := benchSeries(chunkLen, 48, 0.5)
	opt := storeOptions(1, -1, -1)
	if streaming {
		opt.Streaming = true
		opt.Workers = 0 // persists ride the pool; compression rides the appends
		// The cap must exceed the steady-state compression work one chunk's
		// arrival brings (~block cost / 32 here), or every cut arrives
		// before its block finishes and the forced residue lands back in
		// the tail. 5ms covers it with margin on a single-core runner while
		// staying far under the batch cut spike.
		opt.MaxAppendLatency = 5 * time.Millisecond
	}
	store, err := cameo.OpenStoreOptions(b.TempDir(), opt)
	if err != nil {
		b.Fatal(err)
	}
	durs := make([]time.Duration, 0, b.N)
	b.SetBytes(chunkLen * 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		if err := store.Append("s", chunk...); err != nil {
			b.Fatal(err)
		}
		durs = append(durs, time.Since(t0))
	}
	b.StopTimer()
	if err := store.Sync(); err != nil {
		b.Fatal(err)
	}
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	pct := func(q float64) float64 {
		return float64(durs[min(int(q*float64(len(durs))), len(durs)-1)].Nanoseconds())
	}
	b.ReportMetric(pct(0.50), "p50-ns/op")
	b.ReportMetric(pct(0.99), "p99-ns/op")
	b.ReportMetric(float64(durs[len(durs)-1].Nanoseconds()), "max-ns/op")
	if st := store.Stats(); st.BytesWritten > 0 {
		// Ratio over the block-covered samples (the tail is not on disk).
		blockSamples := b.N * chunkLen / 2048 * 2048
		b.ReportMetric(float64(blockSamples*8)/float64(st.BytesWritten), "ratio")
	}
	if err := store.Close(); err != nil {
		b.Fatal(err)
	}
}

func benchStoreAppend(b *testing.B, shards, workers int) {
	chunk := benchSeries(512, 48, 0.5)
	store, err := cameo.OpenStoreOptions(b.TempDir(), storeOptions(shards, workers, -1))
	if err != nil {
		b.Fatal(err)
	}
	var id atomic.Int64
	b.SetBytes(int64(len(chunk) * 8))
	b.ReportAllocs()
	b.SetParallelism(8)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		name := fmt.Sprintf("series-%02d", id.Add(1))
		for pb.Next() {
			if err := store.Append(name, chunk...); err != nil {
				b.Error(err)
				return
			}
		}
	})
	if err := store.Sync(); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	if err := store.Close(); err != nil {
		b.Fatal(err)
	}
}

func benchStoreQuery(b *testing.B, cacheBlocks int) {
	const nSeries, perSeries = 8, 8192
	store, err := cameo.OpenStoreOptions(b.TempDir(), storeOptions(16, 0, cacheBlocks))
	if err != nil {
		b.Fatal(err)
	}
	for s := 0; s < nSeries; s++ {
		if err := store.Append(fmt.Sprintf("series-%02d", s), benchSeries(perSeries, 48, 0.5)...); err != nil {
			b.Fatal(err)
		}
	}
	if err := store.Flush(); err != nil {
		b.Fatal(err)
	}
	var seed atomic.Int64
	b.SetBytes(512 * 8)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(seed.Add(1)))
		for pb.Next() {
			s := rng.Intn(nSeries)
			from := rng.Intn(perSeries - 512)
			if _, err := store.Query(fmt.Sprintf("series-%02d", s), from, from+512); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	if err := store.Close(); err != nil {
		b.Fatal(err)
	}
}

// benchStoreCursor mirrors benchStoreQuery's workload (random 512-sample
// windows of 8192-sample series, blocks of 2048) but streams each range
// through a Cursor instead of materializing it: cold runs range-decode
// only the overlap, cached runs yield cache sub-slices with no copy.
func benchStoreCursor(b *testing.B, cacheBlocks int) {
	const nSeries, perSeries = 8, 8192
	store, err := cameo.OpenStoreOptions(b.TempDir(), storeOptions(16, 0, cacheBlocks))
	if err != nil {
		b.Fatal(err)
	}
	for s := 0; s < nSeries; s++ {
		if err := store.Append(fmt.Sprintf("series-%02d", s), benchSeries(perSeries, 48, 0.5)...); err != nil {
			b.Fatal(err)
		}
	}
	if err := store.Flush(); err != nil {
		b.Fatal(err)
	}
	var seed atomic.Int64
	b.SetBytes(512 * 8)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(seed.Add(1)))
		for pb.Next() {
			s := rng.Intn(nSeries)
			from := rng.Intn(perSeries - 512)
			cur, err := store.Cursor(fmt.Sprintf("series-%02d", s), from, from+512)
			if err != nil {
				b.Error(err)
				return
			}
			n := 0
			for {
				chunk, ok := cur.Next()
				if !ok {
					break
				}
				n += len(chunk)
			}
			if err := cur.Err(); err != nil {
				b.Error(err)
				return
			}
			cur.Close()
			if n != 512 {
				b.Errorf("cursor yielded %d samples", n)
				return
			}
		}
	})
	b.StopTimer()
	if err := store.Close(); err != nil {
		b.Fatal(err)
	}
}

// benchStoreAgg measures QueryAgg answering dashboard-style downsampling
// (64-sample windows over 4096-sample ranges) on a cold store: with the
// CAMEO codec (c nil) every block aggregates via codec pushdown without
// materializing samples; with a bit-stream codec the cursor fallback
// decodes and folds densely.
func benchStoreAgg(b *testing.B, c cameo.Codec) {
	const nSeries, perSeries = 8, 8192
	opt := storeOptions(16, 0, -1)
	opt.Codec = c
	store, err := cameo.OpenStoreOptions(b.TempDir(), opt)
	if err != nil {
		b.Fatal(err)
	}
	for s := 0; s < nSeries; s++ {
		if err := store.Append(fmt.Sprintf("series-%02d", s), benchSeries(perSeries, 48, 0.5)...); err != nil {
			b.Fatal(err)
		}
	}
	if err := store.Flush(); err != nil {
		b.Fatal(err)
	}
	var seed atomic.Int64
	b.SetBytes(4096 * 8)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(seed.Add(1)))
		for pb.Next() {
			s := rng.Intn(nSeries)
			from := rng.Intn(perSeries - 4096)
			vals, err := store.QueryAgg(fmt.Sprintf("series-%02d", s), from, from+4096, 64, cameo.AggMean)
			if err != nil {
				b.Error(err)
				return
			}
			if len(vals) != 64 {
				b.Errorf("QueryAgg yielded %d windows", len(vals))
				return
			}
		}
	})
	b.StopTimer()
	if err := store.Close(); err != nil {
		b.Fatal(err)
	}
}

func main() {
	out := flag.String("out", "BENCH_PR10.json", "output file (- for stdout)")
	label := flag.String("label", "current", "label recorded in the artifact")
	benchtime := flag.String("benchtime", "1s", "per-benchmark duration or iteration count (Nx)")
	benchFilter := flag.String("bench", "", "run only benchmarks whose name matches this regexp")
	compare := flag.String("compare", "", "baseline artifact to diff against; warns on >30% time/op regressions")
	failOnRegress := flag.Bool("fail-on-regress", false, "exit 1 when -compare finds a regression (default: warn only, for noisy shared runners)")
	flag.Parse()

	var filter *regexp.Regexp
	if *benchFilter != "" {
		var err error
		if filter, err = regexp.Compile(*benchFilter); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
	}

	// testing.Benchmark honours the standard -test.benchtime flag; register
	// the testing flags so it can be set without a test binary.
	testing.Init()
	if err := flag.Set("test.benchtime", *benchtime); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}

	r := run{
		Label:     *label,
		Go:        runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		Benchtime: *benchtime,
	}
	failed := 0
	for _, bm := range benchmarks() {
		if filter != nil && !filter.MatchString(bm.name) {
			continue
		}
		res := testing.Benchmark(bm.fn)
		if res.N == 0 {
			// The benchmark func called b.Fatal/b.Error (testing.Benchmark
			// swallows the message). Record the failure instead of emitting
			// 0/0 = NaN, which JSON cannot encode.
			failed++
			fmt.Fprintf(os.Stderr, "%-32s FAILED (benchmark aborted; re-run under `go test -bench` for details)\n", bm.name)
			continue
		}
		entry := result{
			Name:        bm.name,
			Iterations:  res.N,
			NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
			BytesPerOp:  res.AllocedBytesPerOp(),
			AllocsPerOp: res.AllocsPerOp(),
		}
		if mbs, ok := res.Extra["MB/s"]; ok {
			entry.MBPerSec = mbs
		} else if res.Bytes > 0 && res.T > 0 {
			entry.MBPerSec = (float64(res.Bytes) * float64(res.N) / 1e6) / res.T.Seconds()
		}
		entry.P50NsPerOp = res.Extra["p50-ns/op"]
		entry.P99NsPerOp = res.Extra["p99-ns/op"]
		entry.MaxNsPerOp = res.Extra["max-ns/op"]
		entry.Ratio = res.Extra["ratio"]
		r.Results = append(r.Results, entry)
		fmt.Fprintf(os.Stderr, "%-32s %10d ops  %14.1f ns/op  %8d B/op  %6d allocs/op\n",
			bm.name, entry.Iterations, entry.NsPerOp, entry.BytesPerOp, entry.AllocsPerOp)
	}

	regressed := false
	if *compare != "" {
		old, err := loadRun(*compare)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench: -compare:", err)
			os.Exit(1)
		}
		warnings := compareRuns(old, r, regressionThreshold)
		if len(warnings) == 0 {
			fmt.Fprintf(os.Stderr, "bench: no >%.0f%% time/op regressions vs %s (%s)\n",
				regressionThreshold*100, *compare, old.Label)
		}
		for _, w := range warnings {
			// Warn-only by default: shared CI runners are noisy enough that
			// an unconditional hard gate would flake, but the line makes a
			// real regression visible in the job log. -fail-on-regress turns
			// the warnings into an exit-1 gate for dedicated runners.
			fmt.Fprintln(os.Stderr, "bench: REGRESSION", w)
		}
		regressed = len(warnings) > 0
	}

	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
	} else {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "wrote", *out)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "bench: %d benchmark(s) failed\n", failed)
		os.Exit(1)
	}
	if regressed && *failOnRegress {
		fmt.Fprintln(os.Stderr, "bench: failing on regression (-fail-on-regress)")
		os.Exit(1)
	}
}
