package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// regressionThreshold is the relative time/op growth past which -compare
// flags a benchmark: 30%, wide enough that ordinary run-to-run noise on a
// shared runner stays quiet while a real algorithmic regression does not.
const regressionThreshold = 0.30

// loadRun parses a previously written bench artifact.
func loadRun(path string) (run, error) {
	var r run
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

// compareRuns diffs cur against a committed baseline by benchmark name
// and describes every tracked benchmark whose time/op grew by more than
// threshold (0.30 = +30%). Benchmarks present on only one side are
// skipped — a new benchmark has no baseline, and a retired one no
// current run — and the result is sorted worst-first so the biggest
// regression leads the log.
func compareRuns(old, cur run, threshold float64) []string {
	base := make(map[string]result, len(old.Results))
	for _, r := range old.Results {
		base[r.Name] = r
	}
	type reg struct {
		line  string
		delta float64
	}
	var regs []reg
	for _, r := range cur.Results {
		o, ok := base[r.Name]
		if !ok || o.NsPerOp <= 0 {
			continue
		}
		delta := r.NsPerOp/o.NsPerOp - 1
		if delta > threshold {
			regs = append(regs, reg{
				line: fmt.Sprintf("%s: %.0f ns/op -> %.0f ns/op (%+.0f%% vs baseline %q)",
					r.Name, o.NsPerOp, r.NsPerOp, delta*100, old.Label),
				delta: delta,
			})
		}
	}
	sort.Slice(regs, func(i, j int) bool { return regs[i].delta > regs[j].delta })
	lines := make([]string, len(regs))
	for i, g := range regs {
		lines[i] = g.line
	}
	return lines
}
