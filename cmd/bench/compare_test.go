package main

import (
	"strings"
	"testing"
)

// TestCompareRuns pins the -compare diff semantics: only >threshold
// time/op growth on benchmarks present in both runs is flagged, sorted
// worst-first; improvements, small noise, and unmatched names stay quiet.
func TestCompareRuns(t *testing.T) {
	old := run{Label: "baseline", Results: []result{
		{Name: "a", NsPerOp: 1000},
		{Name: "b", NsPerOp: 1000},
		{Name: "c", NsPerOp: 1000},
		{Name: "retired", NsPerOp: 1000},
		{Name: "zeroed", NsPerOp: 0},
	}}
	cur := run{Label: "current", Results: []result{
		{Name: "a", NsPerOp: 1290},  // +29%: inside the 30% noise band
		{Name: "b", NsPerOp: 1400},  // +40%: flagged
		{Name: "c", NsPerOp: 2500},  // +150%: flagged, and worst — must lead
		{Name: "new", NsPerOp: 9e9}, // no baseline: skipped
		{Name: "zeroed", NsPerOp: 500},
	}}
	warnings := compareRuns(old, cur, regressionThreshold)
	if len(warnings) != 2 {
		t.Fatalf("got %d warnings, want 2: %v", len(warnings), warnings)
	}
	if !strings.HasPrefix(warnings[0], "c:") || !strings.Contains(warnings[0], "+150%") {
		t.Fatalf("worst regression must lead, got %q", warnings[0])
	}
	if !strings.HasPrefix(warnings[1], "b:") || !strings.Contains(warnings[1], "+40%") {
		t.Fatalf("second warning = %q", warnings[1])
	}
	if !strings.Contains(warnings[0], `baseline "baseline"`) {
		t.Fatalf("warning should name the baseline label, got %q", warnings[0])
	}

	// An all-quiet comparison yields no warnings at all.
	if w := compareRuns(old, run{Results: []result{{Name: "a", NsPerOp: 900}}}, regressionThreshold); len(w) != 0 {
		t.Fatalf("improvement flagged: %v", w)
	}
}
