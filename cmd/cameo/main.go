// Command cameo compresses and decompresses CSV time series with the CAMEO
// algorithm or any other registered block codec.
//
// Compress a CSV column under an ACF bound and write the retained points:
//
//	cameo -in data.csv -out compressed.csv -lags 24 -eps 0.01
//
// Compress to a target ratio instead, preserving the PACF of hourly means:
//
//	cameo -in data.csv -out c.csv -lags 24 -ratio 10 -stat pacf -agg 60
//
// Decompress a previously produced file back to a dense series:
//
//	cameo -decompress -in compressed.csv -out restored.csv -n 86400
//
// Compressed CSV format: header "index,value", one row per retained point.
//
// With -codec the series is instead compressed through the named block
// codec (cameo, gorilla, chimp, elf, pmc, swing, simpiece) into a binary
// block file — the same self-describing format the embedded Store
// persists:
//
//	cameo -codec elf -in data.csv -out data.blk
//	cameo -decompress -in data.blk -out restored.csv
//
// Decompression detects block files automatically (the header names the
// codec), so -decompress needs no flags for them. Block files additionally
// support range and aggregate queries that exploit the codecs' random
// access instead of reconstructing the whole series:
//
//	cameo -decompress -in data.blk -out window.csv -from 1000 -to 2000
//	cameo -decompress -in data.blk -out daily.csv -step 24 -aggfn max
//
// -from/-to decode only the requested sample range (segment codecs and
// CAMEO evaluate just the pieces spanning it); -step N emits one -aggfn
// value (mean, sum, max, min) per N-sample window, computed for the
// segment codecs and CAMEO straight from the compressed form without
// materializing samples.
package main

import (
	"bytes"
	"encoding/csv"
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	cameo "repro"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/series"
	"repro/internal/stats"
)

func main() {
	var (
		in         = flag.String("in", "", "input CSV path (required)")
		out        = flag.String("out", "", "output CSV path (required)")
		column     = flag.Int("col", 0, "input column (0-based)")
		lags       = flag.Int("lags", 24, "ACF/PACF lags to preserve")
		eps        = flag.Float64("eps", 0, "max statistic deviation (MAE)")
		ratio      = flag.Float64("ratio", 0, "target compression ratio (compression-centric mode)")
		stat       = flag.String("stat", "acf", "statistic to preserve: acf or pacf")
		agg        = flag.Int("agg", 0, "tumbling-window size for on-aggregates mode (0 = direct)")
		aggFn      = flag.String("aggfn", "mean", "aggregation function: mean, sum, max, min")
		hops       = flag.Int("hops", 0, "blocking neighbourhood (0 = default 5*log2 n, -1 = unlimited)")
		threads    = flag.Int("threads", 1, "fine-grained threads")
		partitions = flag.Int("partitions", 1, "coarse-grained partitions (requires -eps)")
		decomp     = flag.Bool("decompress", false, "decompress a compressed CSV or block file instead")
		n          = flag.Int("n", 0, "original length for -decompress")
		from       = flag.Int("from", 0, "with -decompress on a block file: first sample of the range to decode")
		to         = flag.Int("to", -1, "with -decompress on a block file: end (exclusive) of the range to decode (-1 = block end)")
		step       = flag.Int("step", 0, "with -decompress on a block file: emit one -aggfn value per step-sample window instead of raw samples (aggregate query mode)")
		codecName  = flag.String("codec", "", "compress through this block codec to a binary block file instead of CSV ("+strings.Join(cameo.CodecNames(), ", ")+")")
		verbose    = flag.Bool("v", true, "print a summary to stderr")
	)
	flag.Parse()
	if *in == "" || *out == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *decomp {
		if err := decompress(*in, *out, *n, *from, *to, *step, *aggFn, *verbose); err != nil {
			fatal(err)
		}
		return
	}

	xs, err := datasets.LoadCSV(*in, *column)
	if err != nil {
		fatal(err)
	}
	opt := core.Options{
		Lags:        *lags,
		Epsilon:     *eps,
		TargetRatio: *ratio,
		Measure:     stats.MeasureMAE,
		AggWindow:   *agg,
		BlockHops:   *hops,
		Threads:     *threads,
	}
	switch *stat {
	case "acf":
		opt.Statistic = core.StatACF
	case "pacf":
		opt.Statistic = core.StatPACF
	default:
		fatal(fmt.Errorf("unknown statistic %q", *stat))
	}
	if opt.AggFunc, err = parseAggFunc(*aggFn); err != nil {
		fatal(err)
	}

	if *codecName != "" {
		if err := compressBlock(*codecName, xs, opt, *out, *verbose); err != nil {
			fatal(err)
		}
		return
	}

	var res *core.Result
	if *partitions > 1 {
		res, err = core.CompressCoarse(xs, core.CoarseOptions{Options: opt, Partitions: *partitions})
	} else {
		res, err = core.Compress(xs, opt)
	}
	if err != nil {
		fatal(err)
	}
	if err := writeCompressed(*out, res.Compressed); err != nil {
		fatal(err)
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "cameo: %d -> %d points (CR %.2fx), %s deviation %.3g\n",
			len(xs), res.Compressed.Len(), res.CompressionRatio(), *stat, res.Deviation)
	}
}

// compressBlock encodes the whole series as one self-describing binary
// block under the named codec. The cameo codec takes its options from the
// regular flags; every other codec uses its registry defaults.
func compressBlock(name string, xs []float64, opt core.Options, out string, verbose bool) error {
	var c cameo.Codec
	var err error
	if name == "cameo" {
		c = cameo.CodecCAMEO(opt)
	} else if c, err = cameo.CodecByName(name); err != nil {
		return fmt.Errorf("%w (have: %s)", err, strings.Join(cameo.CodecNames(), ", "))
	}
	data, err := cameo.EncodeBlock(c, xs)
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	if verbose {
		raw := 8 * len(xs)
		fmt.Fprintf(os.Stderr, "cameo: %d values -> %d bytes with codec %s (%.2fx vs raw float64, lossy=%v)\n",
			len(xs), len(data), c.Name(), float64(raw)/float64(len(data)), c.Lossy())
	}
	return nil
}

// writeCompressed stores the retained points as index,value rows.
func writeCompressed(path string, ir *series.Irregular) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write([]string{"index", "value"}); err != nil {
		return err
	}
	for _, p := range ir.Points {
		rec := []string{strconv.Itoa(p.Index), strconv.FormatFloat(p.Value, 'g', -1, 64)}
		if err := w.Write(rec); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}

// decompress reads a compressed input — a binary block file (detected by
// its header magic and decoded with the codec it names) or index,value CSV
// rows — and writes the dense reconstruction. Block files support range
// ([from, to)) and aggregate (-step windows of -aggfn) query modes that
// use the codec's random access instead of a full reconstruction.
func decompress(in, out string, n, from, to, step int, aggFn string, verbose bool) error {
	data, err := os.ReadFile(in)
	if err != nil {
		return err
	}
	if cameo.IsBlockFormat(data) {
		if step > 0 {
			return queryBlockAgg(data, out, from, to, step, aggFn, verbose)
		}
		var (
			xs  []float64
			hdr cameo.BlockHeader
		)
		if from > 0 || to >= 0 {
			hiEnd := to
			if hiEnd < 0 {
				hiEnd = math.MaxInt // -1: clamp to the block end
			}
			xs, hdr, err = cameo.DecodeBlockRange(data, from, hiEnd)
			if err == nil && len(xs) == 0 {
				err = fmt.Errorf("empty range [%d,%d) in a %d-sample block", from, min(hiEnd, hdr.N), hdr.N)
			}
		} else {
			xs, hdr, err = cameo.DecodeBlock(data)
		}
		if err != nil {
			return err
		}
		if verbose {
			fmt.Fprintf(os.Stderr, "cameo: decoded %d values from block file (codec %s, format v%d)\n",
				len(xs), codecName(hdr.CodecID), hdr.Version)
		}
		return datasets.SaveCSV(out, "value", xs)
	}
	if from > 0 || to >= 0 || step > 0 {
		return fmt.Errorf("-from/-to/-step need a block-file input (CSV holds retained points, not blocks)")
	}
	r := csv.NewReader(bytes.NewReader(data))
	recs, err := r.ReadAll()
	if err != nil {
		return err
	}
	var pts []series.Point
	for i, rec := range recs {
		if len(rec) < 2 {
			return fmt.Errorf("row %d: need index,value", i+1)
		}
		idx, err := strconv.Atoi(rec[0])
		if err != nil {
			if i == 0 {
				continue // header
			}
			return fmt.Errorf("row %d: %w", i+1, err)
		}
		v, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			return fmt.Errorf("row %d: %w", i+1, err)
		}
		pts = append(pts, series.Point{Index: idx, Value: v})
	}
	if len(pts) == 0 {
		return fmt.Errorf("no points in %s", in)
	}
	if n == 0 {
		n = pts[len(pts)-1].Index + 1
	}
	ir, err := series.NewIrregular(n, pts)
	if err != nil {
		return err
	}
	return datasets.SaveCSV(out, "value", ir.Decompress())
}

// queryBlockAgg answers the -step aggregate query mode: one -aggfn value
// per step-sample window of [from, to), computed in one pass over the
// compressed payload via codec pushdown (segment codecs and CAMEO
// aggregate without materializing samples).
func queryBlockAgg(data []byte, out string, from, to, step int, aggFn string, verbose bool) error {
	f, err := parseAggFunc(aggFn)
	if err != nil {
		return err
	}
	if to < 0 {
		to = math.MaxInt // -1: clamp to the block end
	}
	aggs, h, err := cameo.DecodeBlockWindowAggs(data, from, to, step)
	if err != nil {
		return err
	}
	if len(aggs) == 0 {
		return fmt.Errorf("empty range [%d,%d) in a %d-sample block", max(from, 0), min(to, h.N), h.N)
	}
	vals := make([]float64, len(aggs))
	for i, agg := range aggs {
		vals[i] = agg.Eval(f)
	}
	if verbose {
		fmt.Fprintf(os.Stderr, "cameo: aggregated samples [%d,%d) of a %d-sample block into %d %s windows of %d (codec %s)\n",
			max(from, 0), min(to, h.N), h.N, len(vals), aggFn, step, codecName(h.CodecID))
	}
	return datasets.SaveCSV(out, aggFn, vals)
}

// parseAggFunc maps the -aggfn flag to the shared aggregation enum.
func parseAggFunc(name string) (cameo.AggFunc, error) {
	switch name {
	case "mean":
		return series.AggMean, nil
	case "sum":
		return series.AggSum, nil
	case "max":
		return series.AggMax, nil
	case "min":
		return series.AggMin, nil
	}
	return 0, fmt.Errorf("unknown aggregation %q (want mean, sum, max, min)", name)
}

// codecName resolves a codec ID for log lines, falling back to the number.
func codecName(id uint8) string {
	if c, err := cameo.CodecByID(id); err == nil {
		return c.Name()
	}
	return fmt.Sprintf("id %d", id)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cameo:", err)
	os.Exit(1)
}
