// Command cameo compresses and decompresses CSV time series with the CAMEO
// algorithm or any other registered block codec.
//
// Compress a CSV column under an ACF bound and write the retained points:
//
//	cameo -in data.csv -out compressed.csv -lags 24 -eps 0.01
//
// Compress to a target ratio instead, preserving the PACF of hourly means:
//
//	cameo -in data.csv -out c.csv -lags 24 -ratio 10 -stat pacf -agg 60
//
// Decompress a previously produced file back to a dense series:
//
//	cameo -decompress -in compressed.csv -out restored.csv -n 86400
//
// Compressed CSV format: header "index,value", one row per retained point.
//
// With -codec the series is instead compressed through the named block
// codec (cameo, gorilla, chimp, elf, pmc, swing, simpiece) into a binary
// block file — the same self-describing format the embedded Store
// persists:
//
//	cameo -codec elf -in data.csv -out data.blk
//	cameo -decompress -in data.blk -out restored.csv
//
// Decompression detects block files automatically (the header names the
// codec), so -decompress needs no flags for them.
package main

import (
	"bytes"
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	cameo "repro"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/series"
	"repro/internal/stats"
)

func main() {
	var (
		in         = flag.String("in", "", "input CSV path (required)")
		out        = flag.String("out", "", "output CSV path (required)")
		column     = flag.Int("col", 0, "input column (0-based)")
		lags       = flag.Int("lags", 24, "ACF/PACF lags to preserve")
		eps        = flag.Float64("eps", 0, "max statistic deviation (MAE)")
		ratio      = flag.Float64("ratio", 0, "target compression ratio (compression-centric mode)")
		stat       = flag.String("stat", "acf", "statistic to preserve: acf or pacf")
		agg        = flag.Int("agg", 0, "tumbling-window size for on-aggregates mode (0 = direct)")
		aggFn      = flag.String("aggfn", "mean", "aggregation function: mean, sum, max, min")
		hops       = flag.Int("hops", 0, "blocking neighbourhood (0 = default 5*log2 n, -1 = unlimited)")
		threads    = flag.Int("threads", 1, "fine-grained threads")
		partitions = flag.Int("partitions", 1, "coarse-grained partitions (requires -eps)")
		decomp     = flag.Bool("decompress", false, "decompress a compressed CSV or block file instead")
		n          = flag.Int("n", 0, "original length for -decompress")
		codecName  = flag.String("codec", "", "compress through this block codec to a binary block file instead of CSV ("+strings.Join(cameo.CodecNames(), ", ")+")")
		verbose    = flag.Bool("v", true, "print a summary to stderr")
	)
	flag.Parse()
	if *in == "" || *out == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *decomp {
		if err := decompress(*in, *out, *n, *verbose); err != nil {
			fatal(err)
		}
		return
	}

	xs, err := datasets.LoadCSV(*in, *column)
	if err != nil {
		fatal(err)
	}
	opt := core.Options{
		Lags:        *lags,
		Epsilon:     *eps,
		TargetRatio: *ratio,
		Measure:     stats.MeasureMAE,
		AggWindow:   *agg,
		BlockHops:   *hops,
		Threads:     *threads,
	}
	switch *stat {
	case "acf":
		opt.Statistic = core.StatACF
	case "pacf":
		opt.Statistic = core.StatPACF
	default:
		fatal(fmt.Errorf("unknown statistic %q", *stat))
	}
	switch *aggFn {
	case "mean":
		opt.AggFunc = series.AggMean
	case "sum":
		opt.AggFunc = series.AggSum
	case "max":
		opt.AggFunc = series.AggMax
	case "min":
		opt.AggFunc = series.AggMin
	default:
		fatal(fmt.Errorf("unknown aggregation %q", *aggFn))
	}

	if *codecName != "" {
		if err := compressBlock(*codecName, xs, opt, *out, *verbose); err != nil {
			fatal(err)
		}
		return
	}

	var res *core.Result
	if *partitions > 1 {
		res, err = core.CompressCoarse(xs, core.CoarseOptions{Options: opt, Partitions: *partitions})
	} else {
		res, err = core.Compress(xs, opt)
	}
	if err != nil {
		fatal(err)
	}
	if err := writeCompressed(*out, res.Compressed); err != nil {
		fatal(err)
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "cameo: %d -> %d points (CR %.2fx), %s deviation %.3g\n",
			len(xs), res.Compressed.Len(), res.CompressionRatio(), *stat, res.Deviation)
	}
}

// compressBlock encodes the whole series as one self-describing binary
// block under the named codec. The cameo codec takes its options from the
// regular flags; every other codec uses its registry defaults.
func compressBlock(name string, xs []float64, opt core.Options, out string, verbose bool) error {
	var c cameo.Codec
	var err error
	if name == "cameo" {
		c = cameo.CodecCAMEO(opt)
	} else if c, err = cameo.CodecByName(name); err != nil {
		return fmt.Errorf("%w (have: %s)", err, strings.Join(cameo.CodecNames(), ", "))
	}
	data, err := cameo.EncodeBlock(c, xs)
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	if verbose {
		raw := 8 * len(xs)
		fmt.Fprintf(os.Stderr, "cameo: %d values -> %d bytes with codec %s (%.2fx vs raw float64, lossy=%v)\n",
			len(xs), len(data), c.Name(), float64(raw)/float64(len(data)), c.Lossy())
	}
	return nil
}

// writeCompressed stores the retained points as index,value rows.
func writeCompressed(path string, ir *series.Irregular) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write([]string{"index", "value"}); err != nil {
		return err
	}
	for _, p := range ir.Points {
		rec := []string{strconv.Itoa(p.Index), strconv.FormatFloat(p.Value, 'g', -1, 64)}
		if err := w.Write(rec); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}

// decompress reads a compressed input — a binary block file (detected by
// its header magic and decoded with the codec it names) or index,value CSV
// rows — and writes the dense reconstruction.
func decompress(in, out string, n int, verbose bool) error {
	data, err := os.ReadFile(in)
	if err != nil {
		return err
	}
	if cameo.IsBlockFormat(data) {
		xs, hdr, err := cameo.DecodeBlock(data)
		if err != nil {
			return err
		}
		if verbose {
			name := fmt.Sprintf("id %d", hdr.CodecID)
			if c, err := cameo.CodecByID(hdr.CodecID); err == nil {
				name = c.Name()
			}
			fmt.Fprintf(os.Stderr, "cameo: decoded %d values from block file (codec %s, format v%d)\n",
				len(xs), name, hdr.Version)
		}
		return datasets.SaveCSV(out, "value", xs)
	}
	r := csv.NewReader(bytes.NewReader(data))
	recs, err := r.ReadAll()
	if err != nil {
		return err
	}
	var pts []series.Point
	for i, rec := range recs {
		if len(rec) < 2 {
			return fmt.Errorf("row %d: need index,value", i+1)
		}
		idx, err := strconv.Atoi(rec[0])
		if err != nil {
			if i == 0 {
				continue // header
			}
			return fmt.Errorf("row %d: %w", i+1, err)
		}
		v, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			return fmt.Errorf("row %d: %w", i+1, err)
		}
		pts = append(pts, series.Point{Index: idx, Value: v})
	}
	if len(pts) == 0 {
		return fmt.Errorf("no points in %s", in)
	}
	if n == 0 {
		n = pts[len(pts)-1].Index + 1
	}
	ir, err := series.NewIrregular(n, pts)
	if err != nil {
		return err
	}
	return datasets.SaveCSV(out, "value", ir.Decompress())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cameo:", err)
	os.Exit(1)
}
