package main

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/series"
	"repro/internal/stats"
)

func TestWriteCompressedAndDecompressRoundtrip(t *testing.T) {
	dir := t.TempDir()
	ir := &series.Irregular{N: 10, Points: []series.Point{
		{Index: 0, Value: 1.5}, {Index: 4, Value: -2.25}, {Index: 9, Value: 3},
	}}
	cpath := filepath.Join(dir, "c.csv")
	if err := writeCompressed(cpath, ir); err != nil {
		t.Fatal(err)
	}
	dpath := filepath.Join(dir, "d.csv")
	if err := decompress(cpath, dpath, 10, 0, -1, 0, "mean", false); err != nil {
		t.Fatal(err)
	}
	got, err := datasets.LoadCSV(dpath, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := ir.Decompress()
	if len(got) != len(want) {
		t.Fatalf("length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("value %d: %v, want %v", i, got[i], want[i])
		}
	}
}

func TestDecompressInfersLength(t *testing.T) {
	dir := t.TempDir()
	ir := &series.Irregular{N: 6, Points: []series.Point{
		{Index: 0, Value: 2}, {Index: 5, Value: 7},
	}}
	cpath := filepath.Join(dir, "c.csv")
	if err := writeCompressed(cpath, ir); err != nil {
		t.Fatal(err)
	}
	dpath := filepath.Join(dir, "d.csv")
	if err := decompress(cpath, dpath, 0, 0, -1, 0, "mean", false); err != nil {
		t.Fatal(err)
	}
	got, err := datasets.LoadCSV(dpath, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 6 {
		t.Fatalf("inferred length %d, want 6", len(got))
	}
}

func TestDecompressErrors(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.csv")
	if err := os.WriteFile(bad, []byte("index,value\nx,1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := decompress(bad, filepath.Join(dir, "out.csv"), 0, 0, -1, 0, "mean", false); err == nil {
		t.Fatal("expected parse error")
	}
	empty := filepath.Join(dir, "empty.csv")
	if err := os.WriteFile(empty, []byte("index,value\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := decompress(empty, filepath.Join(dir, "out.csv"), 0, 0, -1, 0, "mean", false); err == nil {
		t.Fatal("expected empty error")
	}
	if err := decompress(filepath.Join(dir, "missing.csv"), filepath.Join(dir, "out.csv"), 0, 0, -1, 0, "mean", false); err == nil {
		t.Fatal("expected missing-file error")
	}
}

func TestCompressBlockRoundtrip(t *testing.T) {
	dir := t.TempDir()
	xs := make([]float64, 300)
	for i := range xs {
		xs[i] = 20 + 5*math.Sin(2*math.Pi*float64(i)/24)
	}
	for _, name := range []string{"cameo", "gorilla", "elf", "pmc"} {
		blk := filepath.Join(dir, name+".blk")
		opt := core.Options{Lags: 24, Epsilon: 0.05, Measure: stats.MeasureMAE}
		if err := compressBlock(name, xs, opt, blk, false); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out := filepath.Join(dir, name+".csv")
		if err := decompress(blk, out, 0, 0, -1, 0, "mean", false); err != nil {
			t.Fatalf("%s decompress: %v", name, err)
		}
		got, err := datasets.LoadCSV(out, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(xs) {
			t.Fatalf("%s: %d values, want %d", name, len(got), len(xs))
		}
		if name == "gorilla" || name == "elf" {
			for i := range xs {
				if got[i] != xs[i] {
					t.Fatalf("%s: lossless mismatch at %d: %v != %v", name, i, got[i], xs[i])
				}
			}
		}
	}
	if err := compressBlock("no-such-codec", xs, core.Options{}, filepath.Join(dir, "x.blk"), false); err == nil {
		t.Fatal("expected unknown-codec error")
	}
}

// TestBlockRangeAndAggQueries covers the -from/-to range mode and the
// -step aggregate query mode on block files.
func TestBlockRangeAndAggQueries(t *testing.T) {
	dir := t.TempDir()
	xs := make([]float64, 240)
	for i := range xs {
		xs[i] = 10 + 5*math.Sin(2*math.Pi*float64(i)/24)
	}
	blk := filepath.Join(dir, "s.blk")
	if err := compressBlock("swing", xs, core.Options{}, blk, false); err != nil {
		t.Fatal(err)
	}

	// Range mode: -from 48 -to 96 yields exactly that slice of the full
	// reconstruction.
	full := filepath.Join(dir, "full.csv")
	if err := decompress(blk, full, 0, 0, -1, 0, "mean", false); err != nil {
		t.Fatal(err)
	}
	part := filepath.Join(dir, "part.csv")
	if err := decompress(blk, part, 0, 48, 96, 0, "mean", false); err != nil {
		t.Fatal(err)
	}
	fullVals, err := datasets.LoadCSV(full, 0)
	if err != nil {
		t.Fatal(err)
	}
	partVals, err := datasets.LoadCSV(part, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(partVals) != 48 {
		t.Fatalf("range decode returned %d values, want 48", len(partVals))
	}
	for i, v := range partVals {
		if v != fullVals[48+i] {
			t.Fatalf("range value %d: %v, want %v", i, v, fullVals[48+i])
		}
	}

	// Aggregate mode: -step 24 -aggfn max emits one window max per day.
	aggOut := filepath.Join(dir, "agg.csv")
	if err := decompress(blk, aggOut, 0, 0, -1, 24, "max", false); err != nil {
		t.Fatal(err)
	}
	aggVals, err := datasets.LoadCSV(aggOut, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(aggVals) != 10 {
		t.Fatalf("aggregate mode returned %d windows, want 10", len(aggVals))
	}
	for w, v := range aggVals {
		want := math.Inf(-1)
		for _, x := range fullVals[w*24 : (w+1)*24] {
			want = math.Max(want, x)
		}
		if v != want {
			t.Fatalf("window %d max = %v, want %v", w, v, want)
		}
	}

	// Unknown aggregation and CSV inputs are rejected.
	if err := decompress(blk, aggOut, 0, 0, -1, 24, "median", false); err == nil {
		t.Fatal("expected unknown-aggregation error")
	}
	if err := decompress(full, aggOut, 0, 0, -1, 24, "max", false); err == nil {
		t.Fatal("expected block-file-required error for -step on CSV")
	}
}
