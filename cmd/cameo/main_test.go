package main

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/series"
	"repro/internal/stats"
)

func TestWriteCompressedAndDecompressRoundtrip(t *testing.T) {
	dir := t.TempDir()
	ir := &series.Irregular{N: 10, Points: []series.Point{
		{Index: 0, Value: 1.5}, {Index: 4, Value: -2.25}, {Index: 9, Value: 3},
	}}
	cpath := filepath.Join(dir, "c.csv")
	if err := writeCompressed(cpath, ir); err != nil {
		t.Fatal(err)
	}
	dpath := filepath.Join(dir, "d.csv")
	if err := decompress(cpath, dpath, 10, false); err != nil {
		t.Fatal(err)
	}
	got, err := datasets.LoadCSV(dpath, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := ir.Decompress()
	if len(got) != len(want) {
		t.Fatalf("length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("value %d: %v, want %v", i, got[i], want[i])
		}
	}
}

func TestDecompressInfersLength(t *testing.T) {
	dir := t.TempDir()
	ir := &series.Irregular{N: 6, Points: []series.Point{
		{Index: 0, Value: 2}, {Index: 5, Value: 7},
	}}
	cpath := filepath.Join(dir, "c.csv")
	if err := writeCompressed(cpath, ir); err != nil {
		t.Fatal(err)
	}
	dpath := filepath.Join(dir, "d.csv")
	if err := decompress(cpath, dpath, 0, false); err != nil {
		t.Fatal(err)
	}
	got, err := datasets.LoadCSV(dpath, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 6 {
		t.Fatalf("inferred length %d, want 6", len(got))
	}
}

func TestDecompressErrors(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.csv")
	if err := os.WriteFile(bad, []byte("index,value\nx,1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := decompress(bad, filepath.Join(dir, "out.csv"), 0, false); err == nil {
		t.Fatal("expected parse error")
	}
	empty := filepath.Join(dir, "empty.csv")
	if err := os.WriteFile(empty, []byte("index,value\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := decompress(empty, filepath.Join(dir, "out.csv"), 0, false); err == nil {
		t.Fatal("expected empty error")
	}
	if err := decompress(filepath.Join(dir, "missing.csv"), filepath.Join(dir, "out.csv"), 0, false); err == nil {
		t.Fatal("expected missing-file error")
	}
}

func TestCompressBlockRoundtrip(t *testing.T) {
	dir := t.TempDir()
	xs := make([]float64, 300)
	for i := range xs {
		xs[i] = 20 + 5*math.Sin(2*math.Pi*float64(i)/24)
	}
	for _, name := range []string{"cameo", "gorilla", "elf", "pmc"} {
		blk := filepath.Join(dir, name+".blk")
		opt := core.Options{Lags: 24, Epsilon: 0.05, Measure: stats.MeasureMAE}
		if err := compressBlock(name, xs, opt, blk, false); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out := filepath.Join(dir, name+".csv")
		if err := decompress(blk, out, 0, false); err != nil {
			t.Fatalf("%s decompress: %v", name, err)
		}
		got, err := datasets.LoadCSV(out, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(xs) {
			t.Fatalf("%s: %d values, want %d", name, len(got), len(xs))
		}
		if name == "gorilla" || name == "elf" {
			for i := range xs {
				if got[i] != xs[i] {
					t.Fatalf("%s: lossless mismatch at %d: %v != %v", name, i, got[i], xs[i])
				}
			}
		}
	}
	if err := compressBlock("no-such-codec", xs, core.Options{}, filepath.Join(dir, "x.blk"), false); err == nil {
		t.Fatal("expected unknown-codec error")
	}
}
