package main

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/datasets"
	"repro/internal/series"
)

func TestWriteCompressedAndDecompressRoundtrip(t *testing.T) {
	dir := t.TempDir()
	ir := &series.Irregular{N: 10, Points: []series.Point{
		{Index: 0, Value: 1.5}, {Index: 4, Value: -2.25}, {Index: 9, Value: 3},
	}}
	cpath := filepath.Join(dir, "c.csv")
	if err := writeCompressed(cpath, ir); err != nil {
		t.Fatal(err)
	}
	dpath := filepath.Join(dir, "d.csv")
	if err := decompress(cpath, dpath, 10); err != nil {
		t.Fatal(err)
	}
	got, err := datasets.LoadCSV(dpath, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := ir.Decompress()
	if len(got) != len(want) {
		t.Fatalf("length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("value %d: %v, want %v", i, got[i], want[i])
		}
	}
}

func TestDecompressInfersLength(t *testing.T) {
	dir := t.TempDir()
	ir := &series.Irregular{N: 6, Points: []series.Point{
		{Index: 0, Value: 2}, {Index: 5, Value: 7},
	}}
	cpath := filepath.Join(dir, "c.csv")
	if err := writeCompressed(cpath, ir); err != nil {
		t.Fatal(err)
	}
	dpath := filepath.Join(dir, "d.csv")
	if err := decompress(cpath, dpath, 0); err != nil {
		t.Fatal(err)
	}
	got, err := datasets.LoadCSV(dpath, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 6 {
		t.Fatalf("inferred length %d, want 6", len(got))
	}
}

func TestDecompressErrors(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.csv")
	if err := os.WriteFile(bad, []byte("index,value\nx,1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := decompress(bad, filepath.Join(dir, "out.csv"), 0); err == nil {
		t.Fatal("expected parse error")
	}
	empty := filepath.Join(dir, "empty.csv")
	if err := os.WriteFile(empty, []byte("index,value\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := decompress(empty, filepath.Join(dir, "out.csv"), 0); err == nil {
		t.Fatal("expected empty error")
	}
	if err := decompress(filepath.Join(dir, "missing.csv"), filepath.Join(dir, "out.csv"), 0); err == nil {
		t.Fatal("expected missing-file error")
	}
}
