package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestEndToEnd builds the binary and drives it like a user would.
func TestEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping e2e build in -short mode")
	}
	bin := filepath.Join(t.TempDir(), "experiments")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build failed: %v\n%s", err, out)
	}

	t.Run("runs one artifact", func(t *testing.T) {
		out, err := exec.Command(bin, "-exp", "tab1", "-quick", "-scale", "0.01", "-maxn", "2000").CombinedOutput()
		if err != nil {
			t.Fatalf("tab1 failed: %v\n%s", err, out)
		}
		if !strings.Contains(string(out), "Table 1") || !strings.Contains(string(out), "SolarPower") {
			t.Fatalf("unexpected output:\n%s", out)
		}
	})

	t.Run("rejects unknown id", func(t *testing.T) {
		out, err := exec.Command(bin, "-exp", "nope").CombinedOutput()
		if err == nil {
			t.Fatalf("expected failure, got:\n%s", out)
		}
		if !strings.Contains(string(out), "unknown experiment") {
			t.Fatalf("unexpected error output:\n%s", out)
		}
	})

	t.Run("requires an id", func(t *testing.T) {
		if err := exec.Command(bin).Run(); err == nil {
			t.Fatal("expected usage failure without -exp")
		}
	})
}
