// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -exp fig6            # one artifact
//	experiments -exp all             # everything
//	experiments -exp tab3 -scale 0.5 # larger replicas (slower, closer to paper)
//
// Output is printed as markdown-ish tables; EXPERIMENTS.md records the
// expected shapes next to measured runs.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		exp   = flag.String("exp", "", "experiment id ("+strings.Join(experiments.IDs(), ", ")+") or 'all'")
		scale = flag.Float64("scale", 0.1, "dataset length scale factor (1.0 = paper-sized)")
		maxN  = flag.Int("maxn", 40000, "cap on generated series length")
		seed  = flag.Int64("seed", 1, "generator seed")
		quick = flag.Bool("quick", false, "trim sweeps for a fast smoke run")
	)
	flag.Parse()
	if *exp == "" {
		flag.Usage()
		os.Exit(2)
	}
	cfg := experiments.Config{
		Out:   os.Stdout,
		Scale: *scale,
		MaxN:  *maxN,
		Seed:  *seed,
		Quick: *quick,
	}
	reg := experiments.Registry()
	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		run, ok := reg[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; available: %s\n", id, strings.Join(experiments.IDs(), ", "))
			os.Exit(2)
		}
		start := time.Now()
		if err := run(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Printf("\n[%s completed in %s]\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}
