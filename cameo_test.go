package cameo

import (
	"math"
	"math/rand"
	"testing"
)

func demoSeries(n, period int, noise float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = 10 + 5*math.Sin(2*math.Pi*float64(i)/float64(period)) + noise*rng.NormFloat64()
	}
	return xs
}

func TestFacadeCompressRoundtrip(t *testing.T) {
	xs := demoSeries(480, 24, 0.5, 1)
	res, err := Compress(xs, Options{Lags: 24, Epsilon: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if res.CompressionRatio() <= 1 {
		t.Fatal("no compression")
	}
	dev, err := Deviation(xs, res.Compressed, Options{Lags: 24, Epsilon: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if dev > 0.02+1e-9 {
		t.Fatalf("deviation %v exceeds bound", dev)
	}
	if got := len(res.Compressed.Decompress()); got != len(xs) {
		t.Fatalf("reconstruction length %d", got)
	}
}

func TestFacadeACFPACF(t *testing.T) {
	xs := demoSeries(480, 24, 0.3, 2)
	a := ACF(xs, 24)
	p := PACF(xs, 5)
	if len(a) != 24 || len(p) != 5 {
		t.Fatalf("lengths %d/%d", len(a), len(p))
	}
	if a[0] < 0.5 {
		t.Fatalf("ACF1 = %v", a[0])
	}
}

func TestFacadeBaselines(t *testing.T) {
	xs := demoSeries(300, 24, 0.5, 3)
	opt := SimplifyOptions{Lags: 24, Epsilon: 0.05}
	if _, err := VW(xs, opt); err != nil {
		t.Fatal(err)
	}
	if _, err := PIP(xs, PIPVertical, opt); err != nil {
		t.Fatal(err)
	}
	if c := PMC(xs, 2.5); c.CompressionRatio() <= 1 {
		t.Fatal("PMC did not compress")
	}
	if enc := Gorilla(xs); enc.BitsPerValue() <= 0 {
		t.Fatal("Gorilla produced no bits")
	}
}

func TestFacadeAnalytics(t *testing.T) {
	xs := demoSeries(600, 24, 0.3, 4)
	if s := SeasonalStrength(xs, 24); s < 0.5 {
		t.Fatalf("seasonal strength %v", s)
	}
	f := Features(xs, 24)
	if f.ACF1 <= 0 {
		t.Fatalf("features: %+v", f)
	}
	specs := Datasets()
	if len(specs) != 8 {
		t.Fatalf("%d datasets", len(specs))
	}
	if _, err := DatasetByName("MinTemp"); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeForecastPipeline(t *testing.T) {
	xs := demoSeries(600, 24, 0.3, 5)
	res, err := Compress(xs[:576], Options{Lags: 24, TargetRatio: 4})
	if err != nil {
		t.Fatal(err)
	}
	train := res.Compressed.Decompress()
	hw := &HoltWinters{Period: 24}
	ev, err := EvaluateForecast(hw, train, xs[576:], 24)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(ev.MSMAPE) {
		t.Fatal("NaN mSMAPE")
	}
}

func TestFacadeAnomalyPipeline(t *testing.T) {
	xs := demoSeries(1000, 40, 0.1, 6)
	for i := 700; i < 740; i++ {
		xs[i] += 8
	}
	res, err := Compress(xs, Options{Lags: 40, TargetRatio: 3})
	if err != nil {
		t.Fatal(err)
	}
	p := IrregularMatrixProfile(res.Compressed, 80)
	loc, _ := p.Discord()
	if loc < 600 || loc > 800 {
		t.Fatalf("discord at %d, want ~700", loc)
	}
}
